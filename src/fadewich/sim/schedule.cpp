#include "fadewich/sim/schedule.hpp"

#include <algorithm>

#include "fadewich/common/error.hpp"

namespace fadewich::sim {

namespace {
/// True if `t` is at least `sep` away from every time in `taken`.
bool well_separated(Seconds t, const std::vector<Seconds>& taken,
                    Seconds sep) {
  for (Seconds other : taken) {
    if (std::abs(t - other) < sep) return false;
  }
  return true;
}

/// Draw a time in [lo, hi] that is separated from all existing times;
/// falls back to the best rejected candidate if the window is congested.
Seconds draw_separated(Seconds lo, Seconds hi,
                       std::vector<Seconds>& taken, Seconds sep, Rng& rng) {
  FADEWICH_EXPECTS(lo <= hi);
  Seconds best = lo;
  double best_gap = -1.0;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const Seconds t = rng.uniform(lo, hi);
    if (well_separated(t, taken, sep)) {
      taken.push_back(t);
      return t;
    }
    double gap = 1e18;
    for (Seconds other : taken) gap = std::min(gap, std::abs(t - other));
    if (gap > best_gap) {
      best_gap = gap;
      best = t;
    }
  }
  taken.push_back(best);
  return best;
}
}  // namespace

std::vector<Movement> generate_day_schedule(const DayScheduleConfig& config,
                                            std::size_t people, Rng& rng) {
  FADEWICH_EXPECTS(people >= 1);
  const Seconds arrival_span =
      config.start_seated ? 0.0 : config.arrival_window;
  FADEWICH_EXPECTS(config.day_length >
                   config.calibration + arrival_span +
                       config.departure_window);
  FADEWICH_EXPECTS(config.break_min <= config.break_max);
  FADEWICH_EXPECTS(config.min_breaks <= config.max_breaks);

  std::vector<Movement> out;
  std::vector<Seconds> taken;  // all movement instants, for separation

  const Seconds arrivals_begin = config.calibration;
  const Seconds arrivals_end = arrivals_begin + config.arrival_window;
  const Seconds departures_begin =
      config.day_length - config.departure_window;

  for (std::size_t p = 0; p < people; ++p) {
    Seconds arrive = arrivals_begin;
    if (!config.start_seated) {
      arrive = draw_separated(arrivals_begin, arrivals_end, taken,
                              config.movement_separation, rng);
      out.push_back({Movement::Kind::kEnter, p, arrive});
    }
    const Seconds depart =
        draw_separated(departures_begin, config.day_length - 30.0, taken,
                       config.movement_separation, rng);
    out.push_back({Movement::Kind::kLeave, p, depart});

    const auto breaks = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(config.min_breaks),
        static_cast<std::int64_t>(config.max_breaks)));
    // Absence intervals already claimed by this person; a new break must
    // not interleave with them (one body cannot leave twice).
    std::vector<Interval> absences;
    for (std::size_t b = 0; b < breaks; ++b) {
      // A break is a leave + re-enter pair; both instants must respect
      // the separation margin, the whole break must fit between the
      // arrival and the final departure, and it must not intersect one of
      // the person's earlier breaks.
      const Seconds latest_leave =
          depart - config.break_max - 2.0 * config.movement_separation;
      const Seconds earliest_leave = arrive + config.movement_separation;
      if (earliest_leave >= latest_leave) break;  // congested day
      bool placed = false;
      for (int attempt = 0; attempt < 64 && !placed; ++attempt) {
        const Seconds leave = rng.uniform(earliest_leave, latest_leave);
        const Seconds away = rng.uniform(config.break_min, config.break_max);
        const Seconds back = leave + away;
        const Interval padded{leave - config.movement_separation,
                              back + config.movement_separation};
        bool clash = !well_separated(leave, taken,
                                     config.movement_separation) ||
                     !well_separated(back, taken,
                                     config.movement_separation);
        for (const Interval& a : absences) {
          clash = clash || padded.overlaps(a);
        }
        if (clash) continue;
        taken.push_back(leave);
        taken.push_back(back);
        absences.push_back({leave, back});
        out.push_back({Movement::Kind::kLeave, p, leave});
        out.push_back({Movement::Kind::kEnter, p, back});
        placed = true;
      }
      // An unplaceable break is dropped: fewer events, never an invalid
      // schedule.
    }
  }

  std::sort(out.begin(), out.end(),
            [](const Movement& a, const Movement& b) {
              return a.time < b.time;
            });
  return out;
}

WeekSchedule generate_week_schedule(const DayScheduleConfig& config,
                                    std::size_t people, std::size_t days,
                                    Rng& rng) {
  FADEWICH_EXPECTS(days >= 1);
  WeekSchedule week;
  week.day_config = config;
  week.days.reserve(days);
  for (std::size_t d = 0; d < days; ++d) {
    week.days.push_back(generate_day_schedule(config, people, rng));
  }
  return week;
}

}  // namespace fadewich::sim
