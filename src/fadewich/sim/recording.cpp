#include "fadewich/sim/recording.hpp"

#include <algorithm>
#include <cmath>

#include "fadewich/common/error.hpp"

namespace fadewich::sim {

Recording::Recording(double tick_hz, std::size_t sensor_count,
                     Seconds day_length, std::size_t days)
    : rate_(tick_hz),
      sensor_count_(sensor_count),
      day_length_(day_length),
      days_(days),
      streams_(sensor_count * (sensor_count - 1)) {
  FADEWICH_EXPECTS(sensor_count >= 2);
  FADEWICH_EXPECTS(day_length > 0.0);
  FADEWICH_EXPECTS(days >= 1);
  const auto expected = static_cast<std::size_t>(
      day_length * static_cast<double>(days) * tick_hz);
  for (auto& s : streams_) s.reserve(expected + 16);
}

std::int8_t Recording::encode_dbm(double rssi_dbm) {
  const double clamped = std::clamp(rssi_dbm, -128.0, 0.0);
  return static_cast<std::int8_t>(std::lround(clamped));
}

void Recording::append_samples(std::span<const double> rssi_dbm) {
  FADEWICH_EXPECTS(rssi_dbm.size() == streams_.size());
  for (std::size_t s = 0; s < streams_.size(); ++s) {
    streams_[s].push_back(encode_dbm(rssi_dbm[s]));
  }
}

void Recording::append_block(std::span<const std::int8_t> block,
                             std::size_t ticks) {
  FADEWICH_EXPECTS(block.size() == ticks * streams_.size());
  for (std::size_t s = 0; s < streams_.size(); ++s) {
    auto& stream = streams_[s];
    stream.reserve(stream.size() + ticks);
    for (std::size_t t = 0; t < ticks; ++t) {
      stream.push_back(block[t * streams_.size() + s]);
    }
  }
}

double Recording::rssi(std::size_t stream, Tick t) const {
  FADEWICH_EXPECTS(stream < streams_.size());
  FADEWICH_EXPECTS(t >= 0 &&
                   static_cast<std::size_t>(t) < streams_[stream].size());
  return static_cast<double>(streams_[stream][static_cast<std::size_t>(t)]);
}

const std::vector<std::int8_t>& Recording::stream(std::size_t s) const {
  FADEWICH_EXPECTS(s < streams_.size());
  return streams_[s];
}

std::size_t Recording::stream_index(std::size_t tx, std::size_t rx) const {
  FADEWICH_EXPECTS(tx < sensor_count_);
  FADEWICH_EXPECTS(rx < sensor_count_);
  FADEWICH_EXPECTS(tx != rx);
  return tx * (sensor_count_ - 1) + (rx < tx ? rx : rx - 1);
}

std::vector<std::size_t> Recording::streams_for_sensors(
    const std::vector<std::size_t>& sensors) const {
  FADEWICH_EXPECTS(sensors.size() >= 2);
  std::vector<std::size_t> out;
  out.reserve(sensors.size() * (sensors.size() - 1));
  for (std::size_t tx : sensors) {
    for (std::size_t rx : sensors) {
      if (tx == rx) continue;
      out.push_back(stream_index(tx, rx));
    }
  }
  return out;
}

bool Recording::seated_at(std::size_t workstation, Seconds t) const {
  FADEWICH_EXPECTS(workstation < seated_.size());
  for (const Interval& iv : seated_[workstation]) {
    if (iv.contains(t)) return true;
  }
  return false;
}

}  // namespace fadewich::sim
