// Keyboard/mouse input simulation.
//
// Following the paper (Section VII-D, citing Mikkelsen et al.), time is
// discretised into 5-second intervals and a seated user generates input
// during an interval with probability 0.78.  When an interval is active
// we place one input event at a uniformly random instant inside it; KMA
// only cares about the time of the most recent event, so one event per
// active interval is sufficient.
#pragma once

#include <vector>

#include "fadewich/common/rng.hpp"
#include "fadewich/common/time.hpp"

namespace fadewich::sim {

struct InputActivityConfig {
  Seconds interval = 5.0;
  double active_probability = 0.78;
};

/// Generates input event times for one workstation over [0, duration),
/// given the intervals during which the user was seated.
class InputActivitySimulator {
 public:
  InputActivitySimulator(InputActivityConfig config, Rng rng);

  /// Sample input events over [0, duration).  `seated` reports whether
  /// the user is at the workstation at a given time.  Events are returned
  /// sorted ascending.
  template <typename SeatedFn>
  std::vector<Seconds> generate(Seconds duration, SeatedFn&& seated) {
    std::vector<Seconds> events;
    for (Seconds t0 = 0.0; t0 < duration; t0 += config_.interval) {
      const Seconds t1 = std::min(t0 + config_.interval, duration);
      // Sample the seated predicate mid-interval; leave/return edges make
      // at most one interval ambiguous, which is below KMA's resolution.
      if (!seated(0.5 * (t0 + t1))) continue;
      if (rng_.bernoulli(config_.active_probability)) {
        events.push_back(rng_.uniform(t0, t1));
      }
    }
    return events;
  }

  const InputActivityConfig& config() const { return config_; }

 private:
  InputActivityConfig config_;
  Rng rng_;
};

}  // namespace fadewich::sim
