// Binary persistence for recordings, so an expensive multi-day dataset
// (or a capture from real hardware with the same framing) can be saved
// once and analysed repeatedly.
//
// Format (little-endian, version 2):
//   magic "FDWR", u32 version,
//   f64 tick_hz, u64 sensor_count, f64 day_length, u64 days,
//   u64 tick_count, streams as raw int8 rows (stream-major),
//   u64 event_count, events (u8 kind, u64 workstation, 3 x f64 times),
//   u64 workstation_count, per workstation: u64 n, n x (f64, f64),
//   u32 crc32 of everything after the version field, end magic "FDRE".
//
// The CRC trailer (new in v2) catches bit rot and the end magic makes
// truncation explicit; version-1 files (no trailer) still load.  Counts
// are capped before any allocation, so a corrupt length field fails
// cleanly instead of driving a giant allocation.
#pragma once

#include <iosfwd>
#include <string>

#include "fadewich/sim/recording.hpp"

namespace fadewich::sim {

/// Serialise a recording.  Throws fadewich::Error on stream failure.
void save_recording(const Recording& recording, std::ostream& os);
void save_recording(const Recording& recording, const std::string& path);

/// Deserialise.  Throws fadewich::Error on malformed input or I/O
/// failure.
Recording load_recording(std::istream& is);
Recording load_recording(const std::string& path);

}  // namespace fadewich::sim
