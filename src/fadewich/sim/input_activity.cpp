#include "fadewich/sim/input_activity.hpp"

#include "fadewich/common/error.hpp"

namespace fadewich::sim {

InputActivitySimulator::InputActivitySimulator(InputActivityConfig config,
                                               Rng rng)
    : config_(config), rng_(rng) {
  FADEWICH_EXPECTS(config_.interval > 0.0);
  FADEWICH_EXPECTS(config_.active_probability >= 0.0 &&
                   config_.active_probability <= 1.0);
}

}  // namespace fadewich::sim
