// A simulated office occupant.
//
// The agent is a small kinematic state machine:
//
//   Outside -> (enter) DoorDwell -> WalkIn -> SitDown -> Seated
//   Seated  -> (leave) StandUp -> WalkOut -> DoorDwell -> Outside
//
// While Seated the body stays near the seat with occasional low-speed
// fidgeting (typing posture shifts) — the paper explicitly allows users to
// "move slightly while remaining at their workstations", which is what
// MD's t_delta threshold must reject.  Walks follow a polyline through the
// room's corridor waypoint at a per-walk randomised speed around 1.4 m/s
// (Section VII-A's assumption).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "fadewich/common/rng.hpp"
#include "fadewich/common/time.hpp"
#include "fadewich/rf/body_shadowing.hpp"
#include "fadewich/rf/floorplan.hpp"

namespace fadewich::sim {

struct PersonConfig {
  double walk_speed_mean = 1.4;   // m/s
  double walk_speed_sigma = 0.12;
  Seconds stand_up_duration = 1.5;
  Seconds sit_down_duration = 1.2;
  // Opening a door toward yourself, stepping in and closing it takes
  // longer than pushing through on the way out.
  Seconds door_dwell_in = 2.4;
  Seconds door_dwell_out = 1.6;
  double fidget_speed = 0.12;      // m/s while shifting in the chair
  double fidget_probability = 0.02;   // chance per second to start
  Seconds fidget_duration_mean = 1.5;
  double seat_jitter_m = 0.03;     // posture offset radius while seated
  Seconds jitter_refresh = 2.0;    // how often the seated offset changes
};

class Person {
 public:
  /// `workstation` indexes into the plan's workstations.
  Person(const rf::FloorPlan& plan, std::size_t workstation,
         PersonConfig config, Rng rng);

  enum class Phase {
    kOutside,
    kDoorDwellIn,
    kWalkIn,
    kSitDown,
    kSeated,
    kStandUp,
    kWalkOut,
    kDoorDwellOut,
  };

  /// Begin the leave sequence.  Requires currently Seated.
  void start_leaving();

  /// Begin the enter sequence.  Requires currently Outside.
  void start_entering();

  /// Place the person directly at their seat (day starts with the user
  /// already at the desk).  Requires currently Outside.
  void sit_down_immediately();

  /// Advance the agent by dt seconds.
  void advance(Seconds dt);

  Phase phase() const { return phase_; }
  bool inside() const { return phase_ != Phase::kOutside; }
  bool seated() const { return phase_ == Phase::kSeated; }
  std::size_t workstation() const { return workstation_; }

  /// Current position and speed for the channel model.  Requires inside().
  rf::BodyState body() const;

  /// True while the person's movement generates the leave/enter signature
  /// (anything but Seated or Outside).
  bool in_transit() const {
    return phase_ != Phase::kSeated && phase_ != Phase::kOutside;
  }

 private:
  void begin_walk(const std::vector<rf::Point>& waypoints);
  void advance_walk(Seconds dt);

  const rf::FloorPlan* plan_;
  std::size_t workstation_;
  PersonConfig config_;
  Rng rng_;

  Phase phase_ = Phase::kOutside;
  rf::Point position_;
  double speed_ = 0.0;

  // Walk state.
  std::vector<rf::Point> waypoints_;
  std::size_t next_waypoint_ = 0;
  double walk_speed_ = 0.0;

  // Phase timer for fixed-duration phases (stand, sit, door dwell).
  Seconds phase_remaining_ = 0.0;

  // Seated micro-motion state.
  rf::Point seat_offset_{};
  Seconds jitter_countdown_ = 0.0;
  Seconds fidget_remaining_ = 0.0;
};

}  // namespace fadewich::sim
