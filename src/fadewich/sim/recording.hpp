// A recorded experiment: every directed RSSI stream sampled at a fixed
// rate over one or more working days, plus the ground truth the paper's
// human supervisor provided — movement events and per-workstation seated
// intervals (from which keyboard/mouse input is drawn).
//
// RSSI values are stored as int8 dBm (range [-128, 0] covers every real
// radio's reporting range), so a full 5-day 9-sensor recording stays in
// the hundreds of megabytes.  Days are concatenated on a single global
// timeline: day d spans [d * day_length, (d+1) * day_length).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fadewich/common/time.hpp"
#include "fadewich/sim/events.hpp"

namespace fadewich::sim {

class Recording {
 public:
  Recording(double tick_hz, std::size_t sensor_count, Seconds day_length,
            std::size_t days);

  const TickRate& rate() const { return rate_; }
  std::size_t sensor_count() const { return sensor_count_; }
  /// Directed streams recorded: m * (m - 1).
  std::size_t stream_count() const { return streams_.size(); }
  std::size_t day_count() const { return days_; }
  Seconds day_length() const { return day_length_; }
  Seconds total_duration() const {
    return day_length_ * static_cast<double>(days_);
  }
  Tick tick_count() const {
    return streams_.empty() ? 0
                            : static_cast<Tick>(streams_[0].size());
  }

  /// Append one tick worth of samples (stream_count values, dBm).
  void append_samples(std::span<const double> rssi_dbm);

  /// Append a row-major [tick][stream] block of already-quantised int8
  /// samples (`ticks * stream_count()` values).  Used by the simulator to
  /// merge independently computed day blocks in tick order.
  void append_block(std::span<const std::int8_t> block, std::size_t ticks);

  /// The int8 dBm encoding append_samples applies, exposed so block
  /// producers quantise identically.
  static std::int8_t encode_dbm(double rssi_dbm);

  /// RSSI of a stream at a tick, in dBm.
  double rssi(std::size_t stream, Tick t) const;

  /// Raw stream storage (int8 dBm), for bulk consumers.
  const std::vector<std::int8_t>& stream(std::size_t s) const;

  /// Index of the directed stream tx -> rx in this recording's order.
  std::size_t stream_index(std::size_t tx, std::size_t rx) const;

  /// Streams covering all ordered pairs within a sensor subset (indices
  /// into the recorded deployment).  Order matches a hypothetical
  /// recording made with only those sensors.
  std::vector<std::size_t> streams_for_sensors(
      const std::vector<std::size_t>& sensors) const;

  EventLog& events() { return events_; }
  const EventLog& events() const { return events_; }

  /// Seated intervals per workstation (global timeline); input activity
  /// is drawn from these.
  std::vector<std::vector<Interval>>& seated_intervals() {
    return seated_;
  }
  const std::vector<std::vector<Interval>>& seated_intervals() const {
    return seated_;
  }

  /// True if the workstation's user is seated at global time t.
  bool seated_at(std::size_t workstation, Seconds t) const;

 private:
  TickRate rate_;
  std::size_t sensor_count_;
  Seconds day_length_;
  std::size_t days_;
  std::vector<std::vector<std::int8_t>> streams_;
  EventLog events_;
  std::vector<std::vector<Interval>> seated_;
};

}  // namespace fadewich::sim
