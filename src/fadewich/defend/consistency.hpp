// Physical-consistency checks over per-link RSSI streams.
//
// Frame authentication (net::verify_frame_tag) stops outsiders; it does
// nothing against a compromised station key or RF-layer jamming, which
// produce well-formed, correctly-signed frames whose *values* are wrong.
// This layer judges the values themselves against physics the attacker
// does not control:
//
//   1. Static bound — a link's RSSI can fade far below its free-path
//      level (obstruction, multipath), but it cannot exceed
//      tx_power - PL(distance) by more than the deployment's shadowing /
//      interference budget.  Samples above the bound are impossible and
//      dropped immediately.
//   2. Variance cap — movement raises a window's standard deviation by a
//      couple of dB; jam-mimic noise powerful enough to force MD
//      triggers raises it far beyond anything a walking human produces.
//   3. Stuck-value runs — jam-mask (replaying a frozen level to hide
//      movement) yields repeat runs orders of magnitude longer than a
//      quantised-but-live radio ever emits.
//
// Violations feed a per-link suspicion score; crossing the threshold
// quarantines the link for a fixed tick budget.  Quarantined links are
// dropped at ingest, which drives the CentralStation's validity-mask /
// imputation path — the same graceful degradation as a dead sensor —
// instead of feeding MD attacker-chosen values.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fadewich/common/time.hpp"
#include "fadewich/rf/geometry.hpp"
#include "fadewich/rf/pathloss.hpp"
#include "fadewich/stats/rolling_window.hpp"

namespace fadewich::defend {

struct ConsistencyConfig {
  /// Headroom above the geometric static level before a sample is
  /// impossible.  Budget: 3-sigma link shadowing (~6 dB) + fading
  /// (~3 dB) + interference bursts (~10 dB) + quantisation.
  double margin_up_db = 22.0;
  /// Absolute floor: nothing below this is a real radio report.
  double floor_dbm = -110.0;
  /// Rolling standard deviation above this flags the link (dB).  Human
  /// movement peaks near 3-4 dB on the paper's geometry; jam-mimic
  /// noise strong enough to trigger MD sits well above 8.
  double max_window_std_db = 8.0;
  /// Standard deviation above this is treated like an impossible value:
  /// heavy suspicion, immediate drop.  No indoor channel reaches it
  /// without deliberate interference.
  double hard_window_std_db = 16.0;
  std::size_t window_ticks = 25;  // 5 s at 5 Hz
  /// Identical consecutive values before the link is called frozen.
  /// Live quantised radios repeat, but runs this long (60 s at 5 Hz)
  /// only come from a masked/replayed stream.
  std::size_t stuck_run_ticks = 300;
  /// Suspicion accounting: violations add weight, clean ticks decay one
  /// point, crossing the threshold quarantines the link.
  std::uint32_t suspicion_threshold = 16;
  std::uint32_t bound_weight = 8;     // impossible sample
  std::uint32_t variance_weight = 2;  // over-variance window
  std::uint32_t stuck_weight = 16;    // frozen run: conclusive
  /// Quarantine period.  Sliding: a violation while quarantined re-arms
  /// the full period, so release requires this long *clean*.
  Tick quarantine_ticks = 600;        // 2 min at 5 Hz
};

// Every verdict except kOk means "do not feed this sample downstream":
// an over-variance sample may be an honest outlier, but imputing it
// costs one stale cell while passing it hands MD an attacker-shaped
// value, so suspicion always errs toward the imputation path.
enum class SampleVerdict : std::uint8_t {
  kOk = 0,
  kImpossible,      // above static bound or below floor
  kExcessVariance,  // window std over the soft cap
  kStuck,           // frozen-run trigger
  kQuarantined,     // link under quarantine
};

class ConsistencyChecker {
 public:
  /// Geometry-free checker: the static bound degenerates to the floor
  /// check only; variance and stuck-run checks stay active.
  ConsistencyChecker(std::size_t device_count, ConsistencyConfig config);

  /// Geometry-aware checker.  `positions[d]` is device d's location;
  /// per-link static bounds are tx_power - PL(distance) + margin_up.
  ConsistencyChecker(std::size_t device_count, ConsistencyConfig config,
                     const std::vector<rf::Point>& positions,
                     const rf::PathLossConfig& path_loss,
                     double tx_power_dbm);

  /// Judge one sample on stream `s` at tick `now`.  Updates suspicion
  /// and may start a quarantine as a side effect.
  SampleVerdict check(std::size_t stream, double rssi_dbm, Tick now);

  bool quarantined(std::size_t stream, Tick now) const;
  std::size_t quarantined_count(Tick now) const;

  /// Lifetime quarantine entries (a link re-quarantined counts again).
  std::uint64_t quarantines() const { return quarantines_; }

  std::size_t stream_count() const { return links_.size(); }
  const ConsistencyConfig& config() const { return config_; }

  /// The static upper bound for a stream (+inf when geometry-free).
  double static_bound_dbm(std::size_t stream) const {
    return bounds_[stream];
  }

 private:
  struct LinkState {
    stats::RollingWindow window;
    double last = 0.0;
    bool has_last = false;
    std::uint32_t run = 1;        // current identical-value run length
    std::uint32_t suspicion = 0;
    Tick quarantine_until = -1;   // exclusive; -1 = never quarantined

    explicit LinkState(std::size_t window_ticks)
        : window(window_ticks == 0 ? 1 : window_ticks) {}
  };

  void raise(LinkState& link, std::uint32_t weight, Tick now);

  ConsistencyConfig config_;
  std::vector<double> bounds_;    // per-stream static upper bound (dBm)
  std::vector<LinkState> links_;
  std::uint64_t quarantines_ = 0;
};

}  // namespace fadewich::defend
