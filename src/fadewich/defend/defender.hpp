// The ingestion-path defender: every wire frame passes through here
// between the FrameDecoder and CentralStation::ingest.
//
// Defence in depth, cheapest check first:
//
//   rate limit  -> token bucket per station id: a flood exhausts its
//                  budget, not the station's assembly buffers.
//   frame auth  -> SipHash-2-4 tag under the station's derived key
//                  (net::WireKey).  Outsider forgeries die here.
//   anti-replay -> per-station sliding sequence window (net::SeqWindow).
//                  Replays of captured frames — verbatim or with a
//                  rewritten seq/tick and patched CRC (the tag cannot be
//                  recomputed without the key) — are rejected; a repeat
//                  seq whose *content* differs from the recorded digest
//                  is a spoof conflict and quarantines the station id.
//   consistency -> physical checks on the values (defend::
//                  ConsistencyChecker): an insider holding the key can
//                  sign anything, but cannot make impossible RSSI
//                  plausible.  Offending links are quarantined.
//
// Rejected frames and quarantined links simply *vanish* from the
// station's input, so degradation rides the existing PR 2 machinery:
// missing cells are imputed, validity masks flag them stale, and MD/RE
// keep running on what remains.  The defender never throws on input.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fadewich/defend/consistency.hpp"
#include "fadewich/net/seq_window.hpp"
#include "fadewich/net/wire.hpp"
#include "fadewich/obs/export.hpp"

namespace fadewich::defend {

struct DefendConfig {
  /// Master off-switch: disabled, filter_frame() forwards every report
  /// untouched (bit-identical to a defender-less pipeline).
  bool enabled = true;
  /// Reject frames without a valid authentication tag.  Turn off only
  /// for legacy stations that cannot sign.
  bool require_auth = true;
  /// Master seed of the per-station key schedule
  /// (net::derive_station_key).  Must match the provisioned stations.
  std::uint64_t key_seed = 0x46414445'57494348ULL;  // "FADEWICH"
  /// Token bucket per station id: sustained frames/tick and burst cap.
  /// A station legitimately sends one frame per tick (its beacon round),
  /// so 4/tick leaves generous headroom for retries and reordering.
  double rate_per_tick = 4.0;
  double rate_burst = 64.0;
  /// Physical-consistency thresholds.
  ConsistencyConfig consistency;
  /// Rejoin smoothing: when a stream resumes after a silence longer
  /// than `rejoin_gap_ticks` (outage, quarantine, suppression), its
  /// value stepped while the station was imputing the last held level.
  /// Feeding that step straight to MD looks exactly like movement — a
  /// DoS attacker could deauthenticate users just by jamming a station
  /// on and off.  Instead the defender blends the stream back from the
  /// held value to live over `ramp_ticks`, spreading the step thin
  /// enough that rolling variance stays under MD's trigger.  Never
  /// active on a gap-free (clean) stream.  ramp_ticks = 0 disables.
  Tick rejoin_gap_ticks = 15;  // 3 s at 5 Hz
  Tick ramp_ticks = 100;       // 20 s at 5 Hz

  /// Environment overrides:
  ///   FADEWICH_DEFEND=0|1        enabled
  ///   FADEWICH_DEFEND_KEYSEED=n  key_seed (decimal)
  ///   FADEWICH_DEFEND_RATE=x     rate_per_tick (burst scales 16x)
  static DefendConfig from_env();
};

/// Why a frame was rejected (kAccept = it was not).
enum class FrameVerdict : std::uint8_t {
  kAccept = 0,
  kRateLimited,         // station over its token budget
  kUnknownStation,      // station id outside the deployment
  kUnauthenticated,     // no tag while require_auth
  kBadTag,              // tag does not verify under the station key
  kReplayed,            // seq already accepted with identical content
  kStale,               // seq below the replay window
  kSpoofConflict,       // seq already accepted with *different* content
  kStationQuarantined,  // station id quarantined by a prior conflict
};

struct DefendCounters {
  std::uint64_t frames_checked = 0;
  std::uint64_t frames_accepted = 0;
  std::uint64_t rate_limited = 0;
  std::uint64_t unknown_station = 0;
  std::uint64_t unauthenticated = 0;
  std::uint64_t bad_tag = 0;
  std::uint64_t replayed = 0;
  std::uint64_t stale = 0;
  std::uint64_t spoof_conflicts = 0;
  std::uint64_t station_quarantine_drops = 0;
  std::uint64_t reports_checked = 0;
  std::uint64_t reports_accepted = 0;
  std::uint64_t impossible_rssi = 0;
  std::uint64_t variance_flags = 0;
  std::uint64_t stuck_drops = 0;
  std::uint64_t link_quarantine_drops = 0;
  std::uint64_t ramped_samples = 0;  // rejoin-smoothed (still delivered)

  std::uint64_t frames_rejected() const {
    return rate_limited + unknown_station + unauthenticated + bad_tag +
           replayed + stale + spoof_conflicts + station_quarantine_drops;
  }
};

/// Flatten defender counters for obs::ScrapeReport.
obs::HealthBlock health_block(const DefendCounters& counters);

class Defender {
 public:
  /// Geometry-free defender (consistency static bound disabled).
  Defender(std::size_t device_count, DefendConfig config);

  /// Geometry-aware defender: device positions enable the per-link
  /// static RSSI bound (see ConsistencyChecker).
  Defender(std::size_t device_count, DefendConfig config,
           const std::vector<rf::Point>& positions,
           const rf::PathLossConfig& path_loss, double tx_power_dbm);

  /// Judge one decoded frame at tick `now` and append the surviving
  /// measurements to `out`.  Rejected frames and quarantined/impossible
  /// reports append nothing; the verdict and counters say why.
  FrameVerdict filter_frame(const net::DecodedFrame& frame, Tick now,
                            std::vector<net::Measurement>& out);

  bool link_quarantined(std::size_t stream, Tick now) const {
    return consistency_.quarantined(stream, now);
  }
  std::size_t quarantined_links(Tick now) const {
    return consistency_.quarantined_count(now);
  }
  bool station_quarantined(std::uint16_t station, Tick now) const;

  const DefendCounters& counters() const { return counters_; }
  const DefendConfig& config() const { return config_; }
  const ConsistencyChecker& consistency() const { return consistency_; }

  /// Publish gauge-style state (quarantined link count) to obs.
  void publish_metrics(Tick now) const;

 private:
  struct StationState {
    net::WireKey key;
    net::SeqWindow window;
    double tokens = 0.0;
    Tick last_refill = 0;
    bool bucket_started = false;
    // Content digests of recently accepted seqs, for replay-vs-spoof
    // discrimination on duplicate sequence numbers.
    std::vector<std::uint64_t> recent_seq;
    std::vector<std::uint32_t> recent_digest;
    std::size_t recent_head = 0;
    Tick quarantine_until = -1;
  };

  static constexpr std::size_t kRecentRing = 64;  // matches SeqWindow span

  void init_state();
  bool take_token(StationState& st, Tick now);
  /// Rejoin smoothing for an accepted sample (see DefendConfig).
  double smooth(std::size_t stream, double value, Tick now);
  static std::uint32_t content_digest(const net::DecodedFrame& frame);
  void remember(StationState& st, std::uint64_t seq, std::uint32_t digest);
  /// Digest recorded for `seq`, if still in the ring.
  std::optional<std::uint32_t> recall(const StationState& st,
                                      std::uint64_t seq) const;

  std::size_t device_count_;
  DefendConfig config_;
  ConsistencyChecker consistency_;
  std::vector<StationState> stations_;
  // Per-stream rejoin-smoothing state (see DefendConfig::ramp_ticks).
  std::vector<Tick> last_seen_;    // tick of the last forwarded sample
  std::vector<double> last_out_;   // value last forwarded downstream
  std::vector<std::uint8_t> has_out_;
  std::vector<Tick> ramp_start_;   // -1 = no ramp in progress
  std::vector<double> ramp_hold_;  // level held while the stream was dark
  DefendCounters counters_;
};

}  // namespace fadewich::defend
