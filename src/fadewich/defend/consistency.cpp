#include "fadewich/defend/consistency.hpp"

#include <limits>

#include "fadewich/common/error.hpp"

namespace fadewich::defend {

ConsistencyChecker::ConsistencyChecker(std::size_t device_count,
                                       ConsistencyConfig config)
    : config_(config) {
  if (device_count < 2) {
    throw Error("consistency checker: device_count must be >= 2");
  }
  const std::size_t streams = device_count * (device_count - 1);
  bounds_.assign(streams, std::numeric_limits<double>::infinity());
  links_.reserve(streams);
  for (std::size_t s = 0; s < streams; ++s) {
    links_.emplace_back(config_.window_ticks);
  }
}

ConsistencyChecker::ConsistencyChecker(std::size_t device_count,
                                       ConsistencyConfig config,
                                       const std::vector<rf::Point>& positions,
                                       const rf::PathLossConfig& path_loss,
                                       double tx_power_dbm)
    : ConsistencyChecker(device_count, config) {
  if (positions.size() < device_count) {
    throw Error("consistency checker: a position per device is required");
  }
  // Stream order matches rf::ChannelMatrix / net::CentralStation:
  // row-major over ordered (tx, rx) pairs, rx skipping tx.
  const rf::LogDistancePathLoss model(path_loss);
  std::size_t s = 0;
  for (std::size_t tx = 0; tx < device_count; ++tx) {
    for (std::size_t rx = 0; rx < device_count; ++rx) {
      if (rx == tx) continue;
      const double d = rf::distance(positions[tx], positions[rx]);
      bounds_[s] = tx_power_dbm - model.loss_db(d) + config_.margin_up_db;
      ++s;
    }
  }
}

void ConsistencyChecker::raise(LinkState& link, std::uint32_t weight,
                               Tick now) {
  link.suspicion += weight;
  if (link.suspicion >= config_.suspicion_threshold) {
    link.quarantine_until = now + config_.quarantine_ticks;
    link.suspicion = 0;
    // The window and run state are deliberately NOT cleared: they are
    // the detector's memory of the attack.  If the quarantine expires
    // while the attack is still running, the very first sample lands in
    // a window that is already hot and re-quarantines within a couple
    // of ticks, instead of granting the attacker a fresh window-fill's
    // worth of accepted samples every quarantine period.
    ++quarantines_;
  }
}

SampleVerdict ConsistencyChecker::check(std::size_t stream, double rssi_dbm,
                                        Tick now) {
  FADEWICH_EXPECTS(stream < links_.size());
  LinkState& link = links_[stream];
  const bool quarantined = link.quarantine_until > now;

  // Quarantine is *sliding*: the statistics keep updating on the
  // samples a quarantined link delivers, and any violation while
  // quarantined re-arms the full quarantine period.  A link therefore
  // only re-enters service after a sustained clean stretch — an attack
  // that outlives the first quarantine never gets a sample accepted at
  // expiry, and once the attack stops the window has already refilled
  // with clean data by the time the quarantine lapses.
  const auto violate = [&](std::uint32_t weight,
                           SampleVerdict verdict) -> SampleVerdict {
    if (quarantined) {
      link.quarantine_until = now + config_.quarantine_ticks;
      return SampleVerdict::kQuarantined;
    }
    raise(link, weight, now);
    return verdict;
  };

  // 1. Static bound: physically impossible values never touch the
  // window statistics (they would poison the variance check too).
  if (rssi_dbm > bounds_[stream] || rssi_dbm < config_.floor_dbm) {
    return violate(config_.bound_weight, SampleVerdict::kImpossible);
  }

  // 3. Frozen-run detection.
  const bool repeat = link.has_last && rssi_dbm == link.last;
  link.run = repeat ? link.run + 1 : 1;
  link.last = rssi_dbm;
  link.has_last = true;
  const bool stuck = link.run >= config_.stuck_run_ticks;
  if (stuck) link.run = 1;

  // 2. Variance caps over the rolling window.  The sample goes into the
  // statistics either way — the window is the detector's memory — but
  // over-cap samples are never forwarded.
  link.window.push(rssi_dbm);
  if (stuck) return violate(config_.stuck_weight, SampleVerdict::kStuck);
  if (link.window.full()) {
    const double std = link.window.stddev();
    if (std > config_.hard_window_std_db) {
      return violate(config_.bound_weight, SampleVerdict::kExcessVariance);
    }
    if (std > config_.max_window_std_db) {
      return violate(config_.variance_weight,
                     SampleVerdict::kExcessVariance);
    }
  }

  if (quarantined) return SampleVerdict::kQuarantined;
  if (link.suspicion > 0) --link.suspicion;  // clean tick decays
  return SampleVerdict::kOk;
}

bool ConsistencyChecker::quarantined(std::size_t stream, Tick now) const {
  FADEWICH_EXPECTS(stream < links_.size());
  return links_[stream].quarantine_until > now;
}

std::size_t ConsistencyChecker::quarantined_count(Tick now) const {
  std::size_t n = 0;
  for (const LinkState& link : links_) {
    if (link.quarantine_until > now) ++n;
  }
  return n;
}

}  // namespace fadewich::defend
