#include "fadewich/defend/defender.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "fadewich/common/crc32.hpp"
#include "fadewich/common/error.hpp"
#include "fadewich/obs/obs.hpp"

namespace fadewich::defend {

namespace {

struct DefendMetrics {
  obs::Counter frames = obs::registry().counter(
      "fadewich_defend_frames_total", "frames judged by the defender");
  obs::Counter rejected = obs::registry().counter(
      "fadewich_defend_frames_rejected_total",
      "frames refused (rate / auth / replay / spoof / quarantine)");
  obs::Counter reports_dropped = obs::registry().counter(
      "fadewich_defend_reports_dropped_total",
      "reports dropped by consistency checks or link quarantine");
  obs::Counter quarantines = obs::registry().counter(
      "fadewich_defend_quarantines_total",
      "link + station quarantine entries");
  obs::Gauge quarantined_links = obs::registry().gauge(
      "fadewich_defend_quarantined_links",
      "links currently under quarantine");
  static DefendMetrics& get() {
    static DefendMetrics metrics;
    return metrics;
  }
};

}  // namespace

DefendConfig DefendConfig::from_env() {
  DefendConfig config;
  if (const char* v = std::getenv("FADEWICH_DEFEND")) {
    config.enabled = std::string(v) != "0";
  }
  if (const char* v = std::getenv("FADEWICH_DEFEND_KEYSEED")) {
    config.key_seed = std::strtoull(v, nullptr, 10);
  }
  if (const char* v = std::getenv("FADEWICH_DEFEND_RATE")) {
    const double rate = std::strtod(v, nullptr);
    if (rate > 0.0) {
      config.rate_per_tick = rate;
      config.rate_burst = rate * 16.0;
    }
  }
  return config;
}

obs::HealthBlock health_block(const DefendCounters& c) {
  obs::HealthBlock block;
  block.name = "defend";
  block.add("frames_checked", static_cast<double>(c.frames_checked));
  block.add("frames_accepted", static_cast<double>(c.frames_accepted));
  block.add("frames_rejected", static_cast<double>(c.frames_rejected()));
  block.add("rate_limited", static_cast<double>(c.rate_limited));
  block.add("unknown_station", static_cast<double>(c.unknown_station));
  block.add("unauthenticated", static_cast<double>(c.unauthenticated));
  block.add("bad_tag", static_cast<double>(c.bad_tag));
  block.add("replayed", static_cast<double>(c.replayed));
  block.add("stale", static_cast<double>(c.stale));
  block.add("spoof_conflicts", static_cast<double>(c.spoof_conflicts));
  block.add("station_quarantine_drops",
            static_cast<double>(c.station_quarantine_drops));
  block.add("reports_checked", static_cast<double>(c.reports_checked));
  block.add("reports_accepted", static_cast<double>(c.reports_accepted));
  block.add("impossible_rssi", static_cast<double>(c.impossible_rssi));
  block.add("variance_flags", static_cast<double>(c.variance_flags));
  block.add("stuck_drops", static_cast<double>(c.stuck_drops));
  block.add("link_quarantine_drops",
            static_cast<double>(c.link_quarantine_drops));
  block.add("ramped_samples", static_cast<double>(c.ramped_samples));
  return block;
}

namespace {

constexpr Tick kNoRamp = -1;

}  // namespace

void Defender::init_state() {
  stations_.resize(device_count_);
  for (std::size_t d = 0; d < device_count_; ++d) {
    stations_[d].key = net::derive_station_key(
        config_.key_seed, static_cast<std::uint16_t>(d));
  }
  const std::size_t streams = device_count_ * (device_count_ - 1);
  last_seen_.assign(streams, 0);
  last_out_.assign(streams, 0.0);
  has_out_.assign(streams, 0);
  ramp_start_.assign(streams, kNoRamp);
  ramp_hold_.assign(streams, 0.0);
}

Defender::Defender(std::size_t device_count, DefendConfig config)
    : device_count_(device_count),
      config_(config),
      consistency_(device_count, config.consistency) {
  init_state();
}

Defender::Defender(std::size_t device_count, DefendConfig config,
                   const std::vector<rf::Point>& positions,
                   const rf::PathLossConfig& path_loss, double tx_power_dbm)
    : device_count_(device_count),
      config_(config),
      consistency_(device_count, config.consistency, positions, path_loss,
                   tx_power_dbm) {
  init_state();
}

bool Defender::take_token(StationState& st, Tick now) {
  if (!st.bucket_started) {
    st.bucket_started = true;
    st.tokens = config_.rate_burst;
    st.last_refill = now;
  } else if (now > st.last_refill) {
    const double refill =
        static_cast<double>(now - st.last_refill) * config_.rate_per_tick;
    st.tokens = std::min(config_.rate_burst, st.tokens + refill);
    st.last_refill = now;
  }
  if (st.tokens < 1.0) return false;
  st.tokens -= 1.0;
  return true;
}

std::uint32_t Defender::content_digest(const net::DecodedFrame& frame) {
  Crc32 crc;
  crc.update(&frame.header.tick, sizeof(frame.header.tick));
  crc.update(&frame.header.tx, sizeof(frame.header.tx));
  for (const net::WireReport& r : frame.reports) {
    crc.update(&r.rx, sizeof(r.rx));
    crc.update(&r.rssi_dbm, sizeof(r.rssi_dbm));
  }
  return crc.value();
}

void Defender::remember(StationState& st, std::uint64_t seq,
                        std::uint32_t digest) {
  if (st.recent_seq.size() < kRecentRing) {
    st.recent_seq.push_back(seq);
    st.recent_digest.push_back(digest);
    return;
  }
  st.recent_seq[st.recent_head] = seq;
  st.recent_digest[st.recent_head] = digest;
  st.recent_head = (st.recent_head + 1) % kRecentRing;
}

std::optional<std::uint32_t> Defender::recall(const StationState& st,
                                              std::uint64_t seq) const {
  for (std::size_t i = 0; i < st.recent_seq.size(); ++i) {
    if (st.recent_seq[i] == seq) return st.recent_digest[i];
  }
  return std::nullopt;
}

double Defender::smooth(std::size_t stream, double value, Tick now) {
  double forward = value;
  if (config_.ramp_ticks > 0 && has_out_[stream] != 0) {
    if (now - last_seen_[stream] > config_.rejoin_gap_ticks) {
      ramp_start_[stream] = now;
      ramp_hold_[stream] = last_out_[stream];
    }
    if (ramp_start_[stream] != kNoRamp &&
        now - ramp_start_[stream] < config_.ramp_ticks) {
      const double alpha =
          static_cast<double>(now - ramp_start_[stream] + 1) /
          static_cast<double>(config_.ramp_ticks);
      forward = ramp_hold_[stream] +
                alpha * (value - ramp_hold_[stream]);
      ++counters_.ramped_samples;
    }
  }
  last_seen_[stream] = now;
  last_out_[stream] = forward;
  has_out_[stream] = 1;
  return forward;
}

bool Defender::station_quarantined(std::uint16_t station, Tick now) const {
  if (station >= stations_.size()) return false;
  return stations_[station].quarantine_until > now;
}

FrameVerdict Defender::filter_frame(const net::DecodedFrame& frame, Tick now,
                                    std::vector<net::Measurement>& out) {
  if (!config_.enabled) {
    net::to_measurements(frame, out);
    return FrameVerdict::kAccept;
  }
  ++counters_.frames_checked;
  DefendMetrics::get().frames.inc();

  const auto reject = [](std::uint64_t& counter) {
    ++counter;
    DefendMetrics::get().rejected.inc();
  };

  // Station identity: in this deployment every sensor is its own
  // reporting station, so a station id outside the device table is a
  // fabricated identity, not a routing error.
  if (frame.header.station_id >= device_count_) {
    reject(counters_.unknown_station);
    return FrameVerdict::kUnknownStation;
  }
  StationState& st = stations_[frame.header.station_id];

  if (st.quarantine_until > now) {
    reject(counters_.station_quarantine_drops);
    return FrameVerdict::kStationQuarantined;
  }

  // Rate limit before any per-byte work: a flood must cost the attacker
  // bandwidth, not the defender CPU.
  if (!take_token(st, now)) {
    reject(counters_.rate_limited);
    return FrameVerdict::kRateLimited;
  }

  if (config_.require_auth) {
    if (!frame.authenticated) {
      reject(counters_.unauthenticated);
      return FrameVerdict::kUnauthenticated;
    }
    if (!net::verify_frame_tag(st.key, frame)) {
      reject(counters_.bad_tag);
      return FrameVerdict::kBadTag;
    }
  }

  // Anti-replay over the station's sequence space.  A duplicate seq with
  // identical content is a replay; with different content it is a spoof
  // under a (necessarily compromised) valid key — quarantine the
  // identity, since its key can no longer be trusted.
  const std::uint32_t digest = content_digest(frame);
  if (st.window.seen(frame.header.seq)) {
    const std::optional<std::uint32_t> prior = recall(st, frame.header.seq);
    if (prior.has_value() && *prior != digest) {
      reject(counters_.spoof_conflicts);
      st.quarantine_until = now + config_.consistency.quarantine_ticks;
      DefendMetrics::get().quarantines.inc();
      return FrameVerdict::kSpoofConflict;
    }
    reject(counters_.replayed);
    return FrameVerdict::kReplayed;
  }
  if (st.window.accept(frame.header.seq) == net::SeqWindow::Result::kStale) {
    reject(counters_.stale);
    return FrameVerdict::kStale;
  }
  remember(st, frame.header.seq, digest);

  // Physical consistency per report.  Reports with device ids outside
  // the deployment are forwarded untouched — CentralStation counts them
  // malformed; duplicating that bookkeeping here would skew its health
  // block.
  const std::uint64_t quarantines_before = consistency_.quarantines();
  for (const net::WireReport& r : frame.reports) {
    ++counters_.reports_checked;
    const net::DeviceId tx = frame.header.tx;
    const double value = static_cast<double>(r.rssi_dbm);
    if (tx >= device_count_ || r.rx >= device_count_ || r.rx == tx) {
      ++counters_.reports_accepted;
      out.push_back(net::Measurement{tx, r.rx, frame.header.tick, value});
      continue;
    }
    const std::size_t stream =
        static_cast<std::size_t>(tx) * (device_count_ - 1) +
        (r.rx < tx ? r.rx : r.rx - 1);
    switch (consistency_.check(stream, value, now)) {
      case SampleVerdict::kOk:
        ++counters_.reports_accepted;
        out.push_back(net::Measurement{tx, r.rx, frame.header.tick,
                                       smooth(stream, value, now)});
        break;
      case SampleVerdict::kExcessVariance:
        ++counters_.variance_flags;
        DefendMetrics::get().reports_dropped.inc();
        break;
      case SampleVerdict::kImpossible:
        ++counters_.impossible_rssi;
        DefendMetrics::get().reports_dropped.inc();
        break;
      case SampleVerdict::kStuck:
        ++counters_.stuck_drops;
        DefendMetrics::get().reports_dropped.inc();
        break;
      case SampleVerdict::kQuarantined:
        ++counters_.link_quarantine_drops;
        DefendMetrics::get().reports_dropped.inc();
        break;
    }
  }
  const std::uint64_t new_quarantines =
      consistency_.quarantines() - quarantines_before;
  if (new_quarantines > 0) {
    DefendMetrics::get().quarantines.add(new_quarantines);
  }

  ++counters_.frames_accepted;
  return FrameVerdict::kAccept;
}

void Defender::publish_metrics(Tick now) const {
  DefendMetrics::get().quarantined_links.set(
      static_cast<double>(consistency_.quarantined_count(now)));
}

}  // namespace fadewich::defend
