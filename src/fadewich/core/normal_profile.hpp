// MD's "normal profile": the distribution of summed standard deviations
// observed while the radio environment is quiet, estimated with a
// Gaussian KDE, with the anomaly threshold at its (100 - alpha)th
// percentile (Section IV-C2) and batch self-updating (Section IV-C3,
// Algorithm 1 lines 10-15).
//
// MD consults the threshold on every tick and the profile updates every
// few hundred ticks, so the percentile inversion must be cheap.  The
// profile keeps its samples sorted and evaluates the KDE's CDF with
// tail pruning: a Gaussian kernel centred more than 8 bandwidths below x
// contributes exactly 1 to the CDF (0 above), so only the few samples
// near x need an erf.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "fadewich/common/error.hpp"

namespace fadewich::core {

struct NormalProfileConfig {
  std::size_t capacity = 600;  // samples retained in the profile
  double alpha = 1.0;          // threshold at the (100 - alpha)th pct
  std::size_t batch_size = 150;   // b: update batch length
  double anomalous_fraction = 0.05;  // tau: batch rejected beyond this
  // Algorithm 1's batch self-update.  Disabling freezes the profile at
  // its initial estimate — the ablation showing why the paper updates:
  // the radio baseline drifts and a static threshold goes stale.
  bool self_update = true;
  // Drift guard hardening Algorithm 1: a batch whose re-estimated
  // threshold moves more than this fraction (relative to the last good
  // threshold) is rejected and the profile rolled back to its last good
  // state, so a corrupted or adversarial batch sequence cannot poison MD
  // through a chain of individually-plausible updates.  0 disables the
  // guard (the paper's unguarded behaviour).
  double max_drift_fraction = 0.0;
};

class NormalProfile {
 public:
  explicit NormalProfile(NormalProfileConfig config = {});

  /// Seed the profile with the initial quiet-period observations and
  /// compute the first threshold.  Requires at least 10 samples.
  void initialize(std::vector<double> samples);

  bool initialized() const { return ring_size_ != 0; }

  /// The (100 - alpha)th percentile of the estimated distribution.
  /// Requires initialized().
  double threshold() const { return threshold_; }

  /// Offer one observation for the self-update queue (Algorithm 1 line
  /// 6): every observed s_t is queued; when the queue reaches b entries it
  /// is either folded into the profile (mostly-normal batch) or discarded
  /// (anomalous batch).  Returns true if the profile was re-estimated.
  bool offer(double value);

  /// KDE evaluated on the current profile (for diagnostics / Fig. 2).
  double pdf(double x) const;
  double cdf(double x) const;

  /// Batched KDE evaluation over the current profile: out[i] = pdf/cdf
  /// at xs[i], within 1e-12 of the scalar calls (shared tail-pruned
  /// kernels, one sample-window scan per query block).  Sweeps (Fig. 2
  /// profile curves, threshold diagnostics) should prefer these.
  /// Requires initialized() and out.size() == xs.size().
  void pdf_block(std::span<const double> xs, std::span<double> out) const;
  void cdf_block(std::span<const double> xs, std::span<double> out) const;

  std::size_t size() const { return ring_size_; }
  double bandwidth() const { return bandwidth_; }
  /// Retained samples in insertion order (oldest first), as persisted.
  std::vector<double> samples_snapshot() const {
    std::vector<double> out;
    copy_in_order(out);
    return out;
  }
  std::vector<double> queue_snapshot() const { return queue_; }
  const NormalProfileConfig& config() const { return config_; }

  /// Restore a previously persisted profile: `samples` in insertion
  /// order (>= 10) plus the pending update queue.  The threshold and
  /// bandwidth are re-derived, so a restored profile is bit-identical to
  /// the one that was saved.  Resets the drift guard's last-good anchor
  /// and counters, like initialize().
  void restore(std::vector<double> samples, std::vector<double> queue);

  /// Batches rejected by the drift guard so far.
  std::uint64_t drift_rollbacks() const { return drift_rollbacks_; }
  /// Batches folded in (and kept) so far.
  std::uint64_t updates_accepted() const { return updates_accepted_; }
  /// The threshold of the last good (committed) estimate.
  double last_good_threshold() const { return last_good_threshold_; }

 private:
  void reestimate();
  void commit_last_good();
  void ring_reset(std::span<const double> samples);
  void ring_push(double value);
  void copy_in_order(std::vector<double>& out) const;

  NormalProfileConfig config_;
  // Retained samples as a flat fixed ring (oldest at ring_head_), sized
  // once at initialize(): MD offers one sample per tick and folds a
  // batch every b ticks, and neither may touch the heap in steady state
  // (see the counting-allocator test over FadewichSystem::step).
  std::vector<double> ring_;
  std::size_t ring_head_ = 0;
  std::size_t ring_size_ = 0;
  std::vector<double> sorted_;   // same contents, sorted
  std::vector<double> queue_;    // pending update batch Q
  double bandwidth_ = 1.0;
  double threshold_ = 0.0;
  // Drift guard state: the last estimate that passed the guard.
  std::vector<double> last_good_samples_;
  double last_good_threshold_ = 0.0;
  std::uint64_t drift_rollbacks_ = 0;
  std::uint64_t updates_accepted_ = 0;
};

}  // namespace fadewich::core
