// Radio Environment module (Section IV-D): turns the first t_delta
// seconds of a variation window into a feature sample and classifies it
// with a multiclass SVM.
//
// Label convention (fixed across the library):
//   0     -> w0, "someone entered the office"
//   1..k  -> w_i, "user left workstation i-1" (0-based workstation index)
#pragma once

#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "fadewich/core/features.hpp"
#include "fadewich/ml/dataset.hpp"
#include "fadewich/ml/multiclass_svm.hpp"

namespace fadewich::core {

/// Label helpers.
constexpr int kLabelEntered = 0;
constexpr int label_for_workstation(std::size_t workstation) {
  return static_cast<int>(workstation) + 1;
}
constexpr bool is_leave_label(int label) { return label > 0; }
constexpr std::size_t workstation_of_label(int label) {
  return static_cast<std::size_t>(label - 1);
}

class RadioEnvironment {
 public:
  RadioEnvironment(FeatureConfig features, ml::SvmConfig svm);

  const FeatureConfig& feature_config() const { return features_; }

  /// Compute a sample's feature vector from per-stream windows.
  std::vector<double> features_from(
      const std::vector<std::vector<double>>& stream_windows) const;

  /// As above with per-stream validity fractions (share of fresh,
  /// non-imputed samples in each stream's window).  Streams below
  /// `FeatureConfig::min_stream_validity` contribute zeroed features.
  /// An empty span means fully valid and matches features_from exactly.
  std::vector<double> features_from(
      const std::vector<std::vector<double>>& stream_windows,
      std::span<const double> validity) const;

  /// Live streams given validity fractions: validity >= min_stream_validity.
  std::size_t live_streams(std::span<const double> validity) const;

  /// Classify degraded input.  Returns nullopt when the classifier is
  /// untrained or fewer than min_live_stream_fraction of streams are
  /// live — classification confidence is then unavailable and callers
  /// (the controller) fall back to Rule-2 timeouts.
  std::optional<int> classify_degraded(
      const std::vector<std::vector<double>>& stream_windows,
      std::span<const double> validity) const;

  /// Train the classifier on labeled samples.  Requires non-empty data.
  void train(const ml::Dataset& samples);

  bool trained() const { return svm_.trained(); }

  /// The trained classifier, for persistence.  Requires trained().
  ml::MulticlassSvmState export_classifier() const {
    return svm_.export_state();
  }

  /// Restore a persisted classifier (throws fadewich::Error on
  /// inconsistent state).
  void import_classifier(ml::MulticlassSvmState state) {
    svm_.import_state(std::move(state));
  }

  /// Classify a feature vector.  Requires trained().
  int classify(const std::vector<double>& features) const;

  /// Classify a batch of feature vectors in one pass: out[i] = label of
  /// features[i].  Every pairwise SVM streams its support vectors once
  /// for the whole batch (ml::MulticlassSvm::predict_block), so offline
  /// sweeps and evaluation replays pay per-batch, not per-sample, memory
  /// traffic.  Requires trained() and out.size() == features.size().
  void classify_block(const std::vector<std::vector<double>>& features,
                      std::span<int> out) const;

 private:
  FeatureConfig features_;
  ml::MulticlassSvm svm_;
};

}  // namespace fadewich::core
