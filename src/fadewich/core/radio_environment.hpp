// Radio Environment module (Section IV-D): turns the first t_delta
// seconds of a variation window into a feature sample and classifies it
// with a multiclass SVM.
//
// Label convention (fixed across the library):
//   0     -> w0, "someone entered the office"
//   1..k  -> w_i, "user left workstation i-1" (0-based workstation index)
#pragma once

#include <vector>

#include "fadewich/core/features.hpp"
#include "fadewich/ml/dataset.hpp"
#include "fadewich/ml/multiclass_svm.hpp"

namespace fadewich::core {

/// Label helpers.
constexpr int kLabelEntered = 0;
constexpr int label_for_workstation(std::size_t workstation) {
  return static_cast<int>(workstation) + 1;
}
constexpr bool is_leave_label(int label) { return label > 0; }
constexpr std::size_t workstation_of_label(int label) {
  return static_cast<std::size_t>(label - 1);
}

class RadioEnvironment {
 public:
  RadioEnvironment(FeatureConfig features, ml::SvmConfig svm);

  const FeatureConfig& feature_config() const { return features_; }

  /// Compute a sample's feature vector from per-stream windows.
  std::vector<double> features_from(
      const std::vector<std::vector<double>>& stream_windows) const;

  /// Train the classifier on labeled samples.  Requires non-empty data.
  void train(const ml::Dataset& samples);

  bool trained() const { return svm_.trained(); }

  /// Classify a feature vector.  Requires trained().
  int classify(const std::vector<double>& features) const;

 private:
  FeatureConfig features_;
  ml::MulticlassSvm svm_;
};

}  // namespace fadewich::core
