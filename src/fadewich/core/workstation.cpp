#include "fadewich/core/workstation.hpp"

#include "fadewich/common/error.hpp"

namespace fadewich::core {

namespace {
// An alert not refreshed for this long (and not yet a screensaver) decays
// back to Active; the controller refreshes every tick while Noisy.
constexpr Seconds kAlertDecay = 1.5;
}  // namespace

WorkstationSession::WorkstationSession(Seconds t_id, Seconds t_ss)
    : t_id_(t_id), t_ss_(t_ss) {
  FADEWICH_EXPECTS(t_id > 0.0);
  FADEWICH_EXPECTS(t_ss > 0.0);
}

void WorkstationSession::transition(SessionState to, Seconds now) {
  state_ = to;
  log_.push_back({to, now});
}

void WorkstationSession::on_alert(Seconds now, Seconds idle_time) {
  last_alert_ = now;
  if (state_ == SessionState::kActive && idle_time < t_id_ + t_ss_) {
    transition(SessionState::kAlert, now);
    // Idle already past tID (Rule 1's decision lands at ~t_delta ~ tID
    // of idle for the user who left): the screensaver shows at once.
    if (idle_time >= t_id_) transition(SessionState::kScreenSaver, now);
  }
}

void WorkstationSession::on_deauthenticate(Seconds now) {
  if (state_ != SessionState::kLocked) {
    transition(SessionState::kLocked, now);
  }
}

void WorkstationSession::on_input(Seconds now) {
  switch (state_) {
    case SessionState::kActive:
      break;
    case SessionState::kAlert:
    case SessionState::kScreenSaver:
      transition(SessionState::kActive, now);
      break;
    case SessionState::kLocked:
      // Re-login: the input is the user authenticating again.
      transition(SessionState::kActive, now);
      break;
  }
}

void WorkstationSession::restore(const SessionSnapshot& snapshot) {
  state_ = snapshot.state;
  last_alert_ = snapshot.last_alert;
  log_.clear();
}

void WorkstationSession::tick(Seconds now, Seconds idle_time) {
  switch (state_) {
    case SessionState::kActive:
    case SessionState::kLocked:
      break;
    case SessionState::kAlert:
      if (idle_time >= t_id_) {
        transition(SessionState::kScreenSaver, now);
      } else if (now - last_alert_ > kAlertDecay) {
        transition(SessionState::kActive, now);
      }
      break;
    case SessionState::kScreenSaver:
      if (idle_time >= t_id_ + t_ss_) {
        transition(SessionState::kLocked, now);
      }
      break;
  }
}

}  // namespace fadewich::core
