#include "fadewich/core/normal_profile.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "fadewich/ml/kde.hpp"

namespace fadewich::core {

namespace {
constexpr double kInvSqrt2 = 0.7071067811865476;
constexpr double kInvSqrt2Pi = 0.3989422804014327;
constexpr double kKernelReach = 8.0;  // bandwidths beyond which Phi is 0/1
}  // namespace

NormalProfile::NormalProfile(NormalProfileConfig config) : config_(config) {
  FADEWICH_EXPECTS(config_.capacity >= 20);
  FADEWICH_EXPECTS(config_.alpha > 0.0 && config_.alpha < 50.0);
  FADEWICH_EXPECTS(config_.batch_size >= 1);
  FADEWICH_EXPECTS(config_.anomalous_fraction > 0.0 &&
                   config_.anomalous_fraction <= 1.0);
  FADEWICH_EXPECTS(config_.max_drift_fraction >= 0.0);
}

void NormalProfile::initialize(std::vector<double> samples) {
  FADEWICH_EXPECTS(samples.size() >= 10);
  samples_.assign(samples.begin(), samples.end());
  while (samples_.size() > config_.capacity) samples_.pop_front();
  queue_.clear();
  reestimate();
  drift_rollbacks_ = 0;
  updates_accepted_ = 0;
  commit_last_good();
}

void NormalProfile::restore(std::vector<double> samples,
                            std::vector<double> queue) {
  if (samples.size() < 10) {
    throw Error("profile state has fewer than 10 samples");
  }
  samples_.assign(samples.begin(), samples.end());
  while (samples_.size() > config_.capacity) samples_.pop_front();
  queue_ = std::move(queue);
  reestimate();
  drift_rollbacks_ = 0;
  updates_accepted_ = 0;
  commit_last_good();
}

void NormalProfile::commit_last_good() {
  last_good_samples_.assign(samples_.begin(), samples_.end());
  last_good_threshold_ = threshold_;
}

bool NormalProfile::offer(double value) {
  FADEWICH_EXPECTS(initialized());
  if (!config_.self_update) return false;
  queue_.push_back(value);
  if (queue_.size() < config_.batch_size) return false;

  // is_anomalous(Q, tau): fraction of queued values above the current
  // threshold.
  std::size_t above = 0;
  for (double v : queue_) {
    if (v >= threshold_) ++above;
  }
  const bool anomalous_batch =
      static_cast<double>(above) >=
      config_.anomalous_fraction * static_cast<double>(queue_.size());

  if (anomalous_batch) {
    queue_.clear();
    return false;
  }

  // Fold the batch in, dropping the oldest values past capacity.
  for (double v : queue_) samples_.push_back(v);
  while (samples_.size() > config_.capacity) samples_.pop_front();
  queue_.clear();
  reestimate();

  // Drift guard: a batch that passed the anomalous-fraction test can
  // still shift the threshold far from the last committed estimate (a
  // slow poisoning sequence does exactly this).  Reject the excursion
  // and roll back to the last good profile.
  if (config_.max_drift_fraction > 0.0) {
    const double scale = std::max(std::abs(last_good_threshold_), 1e-12);
    if (std::abs(threshold_ - last_good_threshold_) >
        config_.max_drift_fraction * scale) {
      samples_.assign(last_good_samples_.begin(), last_good_samples_.end());
      reestimate();
      ++drift_rollbacks_;
      return false;
    }
  }
  ++updates_accepted_;
  commit_last_good();
  return true;
}

void NormalProfile::reestimate() {
  sorted_.assign(samples_.begin(), samples_.end());
  std::sort(sorted_.begin(), sorted_.end());
  bandwidth_ = ml::GaussianKde::silverman_bandwidth(sorted_);

  // Invert the CDF at p = 1 - alpha/100 by bisection on the pruned CDF.
  const double p = 1.0 - config_.alpha / 100.0;
  double lo = sorted_.front() - kKernelReach * bandwidth_;
  double hi = sorted_.back() + kKernelReach * bandwidth_;
  for (int i = 0; i < 80 && hi - lo > 1e-9 * (1.0 + std::abs(hi)); ++i) {
    const double mid = 0.5 * (lo + hi);
    if (cdf_sorted(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  threshold_ = 0.5 * (lo + hi);
}

double NormalProfile::cdf_sorted(double x) const {
  // Samples below x - reach contribute 1; above x + reach contribute 0;
  // only the middle needs erf.
  const double reach = kKernelReach * bandwidth_;
  const auto lo_it =
      std::lower_bound(sorted_.begin(), sorted_.end(), x - reach);
  const auto hi_it =
      std::upper_bound(sorted_.begin(), sorted_.end(), x + reach);
  double acc = static_cast<double>(lo_it - sorted_.begin());
  for (auto it = lo_it; it != hi_it; ++it) {
    acc += 0.5 * (1.0 + std::erf((x - *it) / bandwidth_ * kInvSqrt2));
  }
  return acc / static_cast<double>(sorted_.size());
}

double NormalProfile::pdf(double x) const {
  FADEWICH_EXPECTS(initialized());
  const double reach = kKernelReach * bandwidth_;
  const auto lo_it =
      std::lower_bound(sorted_.begin(), sorted_.end(), x - reach);
  const auto hi_it =
      std::upper_bound(sorted_.begin(), sorted_.end(), x + reach);
  double acc = 0.0;
  for (auto it = lo_it; it != hi_it; ++it) {
    const double u = (x - *it) / bandwidth_;
    acc += std::exp(-0.5 * u * u);
  }
  return acc * kInvSqrt2Pi /
         (bandwidth_ * static_cast<double>(sorted_.size()));
}

double NormalProfile::cdf(double x) const {
  FADEWICH_EXPECTS(initialized());
  return cdf_sorted(x);
}

}  // namespace fadewich::core
