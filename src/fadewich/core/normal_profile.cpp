#include "fadewich/core/normal_profile.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "fadewich/ml/kde.hpp"

namespace fadewich::core {

// The pruned-CDF/PDF kernels live in ml/kde.hpp (kde_*_sorted) and are
// shared with ml::GaussianKde, so the profile and the KDE evaluate the
// identical tail-pruned sums over one sorted flat array.

NormalProfile::NormalProfile(NormalProfileConfig config) : config_(config) {
  FADEWICH_EXPECTS(config_.capacity >= 20);
  FADEWICH_EXPECTS(config_.alpha > 0.0 && config_.alpha < 50.0);
  FADEWICH_EXPECTS(config_.batch_size >= 1);
  FADEWICH_EXPECTS(config_.anomalous_fraction > 0.0 &&
                   config_.anomalous_fraction <= 1.0);
  FADEWICH_EXPECTS(config_.max_drift_fraction >= 0.0);
}

void NormalProfile::ring_reset(std::span<const double> samples) {
  // Size the ring once; steady-state pushes and folds only overwrite.
  ring_.resize(config_.capacity);
  ring_head_ = 0;
  ring_size_ = 0;
  // Keep the most recent `capacity` values in insertion order, exactly
  // as the eviction-on-push path would have.
  const std::size_t skip =
      samples.size() > config_.capacity ? samples.size() - config_.capacity
                                        : 0;
  for (std::size_t i = skip; i < samples.size(); ++i) {
    ring_[ring_size_++] = samples[i];
  }
}

void NormalProfile::ring_push(double value) {
  if (ring_size_ < config_.capacity) {
    std::size_t slot = ring_head_ + ring_size_;
    if (slot >= config_.capacity) slot -= config_.capacity;
    ring_[slot] = value;
    ++ring_size_;
  } else {
    ring_[ring_head_] = value;  // overwrite the oldest
    ++ring_head_;
    if (ring_head_ == config_.capacity) ring_head_ = 0;
  }
}

void NormalProfile::copy_in_order(std::vector<double>& out) const {
  out.resize(ring_size_);
  const std::size_t tail =
      std::min(ring_size_, config_.capacity - ring_head_);
  std::copy_n(ring_.begin() + static_cast<std::ptrdiff_t>(ring_head_),
              tail, out.begin());
  std::copy_n(ring_.begin(), ring_size_ - tail,
              out.begin() + static_cast<std::ptrdiff_t>(tail));
}

void NormalProfile::initialize(std::vector<double> samples) {
  FADEWICH_EXPECTS(samples.size() >= 10);
  ring_reset(samples);
  queue_.clear();
  reestimate();
  drift_rollbacks_ = 0;
  updates_accepted_ = 0;
  commit_last_good();
}

void NormalProfile::restore(std::vector<double> samples,
                            std::vector<double> queue) {
  if (samples.size() < 10) {
    throw Error("profile state has fewer than 10 samples");
  }
  ring_reset(samples);
  queue_ = std::move(queue);
  reestimate();
  drift_rollbacks_ = 0;
  updates_accepted_ = 0;
  commit_last_good();
}

void NormalProfile::commit_last_good() {
  copy_in_order(last_good_samples_);
  last_good_threshold_ = threshold_;
}

bool NormalProfile::offer(double value) {
  FADEWICH_EXPECTS(initialized());
  if (!config_.self_update) return false;
  queue_.push_back(value);
  if (queue_.size() < config_.batch_size) return false;

  // is_anomalous(Q, tau): fraction of queued values above the current
  // threshold.
  std::size_t above = 0;
  for (double v : queue_) {
    if (v >= threshold_) ++above;
  }
  const bool anomalous_batch =
      static_cast<double>(above) >=
      config_.anomalous_fraction * static_cast<double>(queue_.size());

  if (anomalous_batch) {
    queue_.clear();
    return false;
  }

  // Fold the batch in, dropping the oldest values past capacity.
  for (double v : queue_) ring_push(v);
  queue_.clear();
  reestimate();

  // Drift guard: a batch that passed the anomalous-fraction test can
  // still shift the threshold far from the last committed estimate (a
  // slow poisoning sequence does exactly this).  Reject the excursion
  // and roll back to the last good profile.
  if (config_.max_drift_fraction > 0.0) {
    const double scale = std::max(std::abs(last_good_threshold_), 1e-12);
    if (std::abs(threshold_ - last_good_threshold_) >
        config_.max_drift_fraction * scale) {
      ring_reset(last_good_samples_);
      reestimate();
      ++drift_rollbacks_;
      return false;
    }
  }
  ++updates_accepted_;
  commit_last_good();
  return true;
}

void NormalProfile::reestimate() {
  copy_in_order(sorted_);
  std::sort(sorted_.begin(), sorted_.end());
  bandwidth_ = ml::GaussianKde::silverman_bandwidth(sorted_);

  // Invert the CDF at p = 1 - alpha/100 by bisection on the pruned CDF.
  threshold_ = ml::kde_percentile_sorted(sorted_, bandwidth_,
                                         1.0 - config_.alpha / 100.0,
                                         /*max_iterations=*/80,
                                         /*rel_tol=*/1e-9);
}

double NormalProfile::pdf(double x) const {
  FADEWICH_EXPECTS(initialized());
  return ml::kde_pdf_sorted(sorted_, bandwidth_, x);
}

double NormalProfile::cdf(double x) const {
  FADEWICH_EXPECTS(initialized());
  return ml::kde_cdf_sorted(sorted_, bandwidth_, x);
}

void NormalProfile::pdf_block(std::span<const double> xs,
                              std::span<double> out) const {
  FADEWICH_EXPECTS(initialized());
  ml::kde_pdf_block_sorted(sorted_, bandwidth_, xs, out);
}

void NormalProfile::cdf_block(std::span<const double> xs,
                              std::span<double> out) const {
  FADEWICH_EXPECTS(initialized());
  ml::kde_cdf_block_sorted(sorted_, bandwidth_, xs, out);
}

}  // namespace fadewich::core
