// Movement Detection module (Section IV-C).
//
// Per tick, MD pushes every stream's new RSSI sample into a short sliding
// window, sums the per-stream standard deviations
//
//   s_t = sum_i sigma(V^(i)_{t-d, t})
//
// and compares s_t against the normal profile's percentile threshold.
// Runs of anomalous ticks form *variation windows* [t1, t2]; sub-threshold
// gaps shorter than `merge_gap` do not split a window (RSSI is noisy at
// sample granularity).  Windows shorter than t_delta are ignored by the
// controller, not by MD — MD reports every window plus the live duration
// dW_t the controller's state machine keys on.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fadewich/common/time.hpp"
#include "fadewich/core/normal_profile.hpp"
#include "fadewich/stats/window_bank.hpp"

namespace fadewich::core {

struct MovementDetectorConfig {
  Seconds std_window = 2.0;    // d: per-stream std-dev window
  Seconds calibration = 60.0;  // quiet period used to seed the profile
  Seconds merge_gap = 0.6;     // max sub-threshold gap inside one window
  // Degraded-tick fallback: when fewer than this fraction of streams
  // carry fresh (non-imputed) samples, s_t is held at its previous value
  // and the profile is not updated — the tick neither opens nor closes
  // variation windows on its own.
  double min_live_fraction = 0.5;
  NormalProfileConfig profile;
};

struct VariationWindow {
  Tick begin = 0;  // first anomalous tick
  Tick end = 0;    // last anomalous tick (inclusive)
};

enum class MdState {
  kCalibrating,  // profile not yet available
  kNormal,
  kAnomalous,
};

/// MD's durable state for persistence: the learned profile (plus its
/// pending update queue), the tick clock, and degradation counters.  The
/// per-stream sliding windows are deliberately *not* persisted — after a
/// restart their contents would describe a radio environment from before
/// the downtime — so a restored detector re-warms for `std_window`
/// seconds (reporting kCalibrating) before resuming detection.
struct MovementDetectorState {
  Tick now = 0;
  double last_st = 0.0;
  std::uint64_t degraded_ticks = 0;
  std::vector<double> profile_samples;  // empty = still calibrating
  std::vector<double> profile_queue;
  std::vector<double> calibration_buffer;
};

class MovementDetector {
 public:
  /// Requires stream_count >= 1 and tick_hz > 0.
  MovementDetector(std::size_t stream_count, double tick_hz,
                   MovementDetectorConfig config = {});

  /// Consume one tick of samples (one value per stream).
  MdState step(std::span<const double> rssi_row);

  /// Consume one tick with a per-stream validity mask: `valid[i]` false
  /// marks stream i's sample as stale (e.g. imputed by the central
  /// station after report loss).  Stale samples still enter the stream's
  /// sliding window (the row is the station's best reconstruction) but
  /// are excluded from the Σstddev sum, which is rescaled by
  /// stream_count / live_count so s_t stays comparable to the profile
  /// threshold.  Below `min_live_fraction` live streams the tick is
  /// degraded: s_t holds its previous value and the profile is frozen.
  /// An empty mask means all streams are valid and is bit-identical to
  /// step(rssi_row).
  MdState step(std::span<const double> rssi_row,
               std::span<const std::uint8_t> valid);

  /// Ticks processed so far (the tick index of the next step call).
  Tick now() const { return now_; }
  const TickRate& rate() const { return rate_; }

  /// The most recent s_t (0 until windows fill).
  double last_sum_std() const { return last_st_; }

  /// Fraction of streams with fresh samples on the last step (1 until
  /// a masked step reports staleness).
  double last_live_fraction() const { return last_live_fraction_; }

  /// Ticks degraded below min_live_fraction so far.
  std::uint64_t degraded_ticks() const { return degraded_ticks_; }

  /// The open variation window, if any; `end` tracks the last anomalous
  /// tick seen.
  std::optional<VariationWindow> current_window() const;

  /// dW_t: duration (seconds) of the current variation window, 0 if none.
  Seconds current_window_duration() const;

  /// Windows that have closed, in completion order.  Callers may consume
  /// (clear) this between steps.
  std::vector<VariationWindow>& completed_windows() {
    return completed_;
  }

  const NormalProfile& profile() const { return profile_; }
  bool calibrated() const { return profile_.initialized(); }

  /// Durable state for persistence.
  MovementDetectorState export_state() const;

  /// Restore from persisted state: the profile and clock come back
  /// exactly; the sliding windows restart empty, so the detector reports
  /// kCalibrating for the next `std_window` seconds (the re-warm window)
  /// and any variation window open at save time is dropped.  Throws
  /// fadewich::Error on inconsistent state.
  void import_state(const MovementDetectorState& state);

 private:
  /// Push a finished window to completed_ and record its obs counters.
  void close_window(const VariationWindow& window);

  TickRate rate_;
  MovementDetectorConfig config_;
  stats::WindowBank windows_;          // one per-stream window per lane
  std::vector<double> stddev_row_;     // per-tick batched stddev scratch
  bool windows_warm_ = false;  // all per-stream windows have filled once
  NormalProfile profile_;
  std::vector<double> calibration_buffer_;
  Tick calibration_ticks_;
  Tick merge_gap_ticks_;

  Tick now_ = 0;
  double last_st_ = 0.0;
  double last_live_fraction_ = 1.0;
  std::uint64_t degraded_ticks_ = 0;
  std::optional<VariationWindow> open_;
  Tick last_anomalous_ = -1;
  std::vector<VariationWindow> completed_;
};

}  // namespace fadewich::core
