#include "fadewich/core/system.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>

#include "fadewich/common/error.hpp"
#include "fadewich/obs/obs.hpp"

namespace fadewich::core {

namespace {

struct SysMetrics {
  obs::Counter steps = obs::registry().counter(
      "fadewich_sys_steps_total", "pipeline ticks processed");
  obs::Histogram step_latency = obs::registry().histogram(
      "fadewich_sys_step_seconds",
      "end-to-end step wall time, sampled every 64 ticks");
  static SysMetrics& get() {
    static SysMetrics metrics;
    return metrics;
  }
};

// Sampling keeps the steady_clock out of 63 of every 64 ticks; the step
// path is the tightest loop the system has, and the budget is < 2%.
constexpr Tick kLatencySampleStride = 64;

std::size_t history_capacity(const SystemConfig& config) {
  // Enough to re-read a feature window that started a little before the
  // detection crossed t_delta (merge gaps, rounding) plus safety margin.
  const Seconds span =
      config.controller.t_delta + config.md.merge_gap + 5.0;
  return static_cast<std::size_t>(std::ceil(span * config.tick_hz)) + 4;
}
}  // namespace

FadewichSystem::FadewichSystem(std::size_t stream_count,
                               std::size_t workstation_count,
                               SystemConfig config)
    : config_(config),
      rate_(config.tick_hz),
      window_ticks_(rate_.to_ticks_ceil(config.controller.t_delta)),
      kma_(workstation_count),
      md_(stream_count, config.tick_hz, config.md),
      re_(config.features, config.svm),
      controller_(config.controller, workstation_count),
      labeler_(config.labeler, workstation_count),
      history_(stream_count, history_capacity(config)),
      validity_history_(stream_count, history_capacity(config)) {
  FADEWICH_EXPECTS(stream_count >= 1);
  FADEWICH_EXPECTS(workstation_count >= 1);
  FADEWICH_EXPECTS(config.labeler.t_delta == config.controller.t_delta);
  sessions_.reserve(workstation_count);
  for (std::size_t w = 0; w < workstation_count; ++w) {
    sessions_.emplace_back(config.t_id, config.t_ss);
  }
}

void FadewichSystem::record_input(std::size_t workstation, Seconds t) {
  FADEWICH_EXPECTS(workstation < sessions_.size());
  kma_.record_input(workstation, t);
  sessions_[workstation].on_input(t);
}

std::pair<Tick, Tick> FadewichSystem::current_window_range() const {
  const auto window = md_.current_window();
  FADEWICH_EXPECTS(window.has_value());
  const Tick begin = std::max(window->begin, history_.oldest_tick());
  const Tick end =
      std::min(begin + window_ticks_ - 1, history_.ticks_stored() - 1);
  return {begin, end};
}

std::vector<std::vector<double>> FadewichSystem::current_window_samples()
    const {
  const auto [begin, end] = current_window_range();
  return history_.windows(begin, end);
}

std::vector<double> FadewichSystem::current_window_validity() const {
  const auto [begin, end] = current_window_range();
  const auto masks = validity_history_.windows(begin, end);
  std::vector<double> fractions;
  fractions.reserve(masks.size());
  for (const auto& mask : masks) {
    double sum = 0.0;
    for (const double v : mask) sum += v;
    fractions.push_back(sum / static_cast<double>(mask.size()));
  }
  return fractions;
}

std::optional<int> FadewichSystem::classify_current_window() {
  if (!re_.trained()) return std::nullopt;
  return re_.classify_degraded(current_window_samples(),
                               current_window_validity());
}

void FadewichSystem::collect_training_sample() {
  const Seconds decision_time = now();
  AutoLabeler::Attempt attempt = labeler_.attempt(kma_, decision_time);
  if (attempt.ambiguous) return;  // discarded, per the paper
  if (attempt.label) {
    samples_.add(re_.features_from(current_window_samples(),
                                   current_window_validity()),
                 *attempt.label);
    return;
  }
  if (attempt.deferred()) {
    pending_samples_.push_back(
        {decision_time,
         re_.features_from(current_window_samples(),
                           current_window_validity()),
         std::move(attempt)});
  }
}

void FadewichSystem::resolve_pending_entries() {
  const Seconds horizon = labeler_.config().entry_confirmation;
  while (!pending_samples_.empty() &&
         now() >= pending_samples_.front().decision_time + horizon) {
    PendingSample& pending = pending_samples_.front();
    const std::optional<int> label = labeler_.resolve(
        kma_, pending.decision_time, pending.attempt, now());
    if (label) {
      samples_.add(std::move(pending.features), *label);
    }
    pending_samples_.pop_front();
  }
}

FadewichSystem::StepResult FadewichSystem::step(
    std::span<const double> rssi_row) {
  return step(rssi_row, {});
}

FadewichSystem::StepResult FadewichSystem::step(
    std::span<const double> rssi_row,
    std::span<const std::uint8_t> valid) {
  FADEWICH_EXPECTS(valid.empty() || valid.size() == rssi_row.size());
  auto& metrics = SysMetrics::get();
  metrics.steps.inc();
  const bool timed =
      obs::enabled() && tick_ % kLatencySampleStride == 0;
  const auto started = timed ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point{};
  struct LatencySample {
    bool timed;
    std::chrono::steady_clock::time_point started;
    obs::Histogram& histogram;
    ~LatencySample() {
      if (!timed) return;
      histogram.observe(std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - started)
                            .count());
    }
  } latency_sample{timed, started, metrics.step_latency};

  history_.push(rssi_row);
  if (valid.empty()) {
    validity_row_.assign(rssi_row.size(), 1.0);
  } else {
    validity_row_.resize(valid.size());
    for (std::size_t s = 0; s < valid.size(); ++s) {
      validity_row_[s] = valid[s] ? 1.0 : 0.0;
    }
  }
  validity_history_.push(validity_row_);
  StepResult result;
  result.md_state = md_.step(rssi_row, valid);
  ++tick_;
  const Seconds t = now();

  if (training_) {
    resolve_pending_entries();
    // Mirror the controller's Rule 1 moment: sample when the live window
    // reaches t_delta.  Use the controller FSM itself so training and
    // online phases trigger at identical instants.
    result.actions = controller_.step(
        t, md_.current_window_duration(), kma_, [&]() -> std::optional<int> {
          collect_training_sample();
          return std::nullopt;  // no RE yet: Rule 1 cannot fire
        });
    // Training phase never acts on workstations.
    result.actions.clear();
    return result;
  }

  result.actions = controller_.step(
      t, md_.current_window_duration(), kma_, [&]() {
        const std::optional<int> label = classify_current_window();
        result.classification = label;
        return label;
      });

  for (const Action& action : result.actions) {
    switch (action.type) {
      case ActionType::kDeauthenticate:
        sessions_[action.workstation].on_deauthenticate(action.time);
        break;
      case ActionType::kAlert:
        sessions_[action.workstation].on_alert(
            action.time, kma_.idle_time(action.workstation, action.time));
        break;
    }
  }
  for (std::size_t w = 0; w < sessions_.size(); ++w) {
    sessions_[w].tick(t, kma_.idle_time(w, t));
  }
  return result;
}

bool FadewichSystem::finish_training() {
  FADEWICH_EXPECTS(training_);
  if (samples_.empty()) return false;
  bool multiple_classes = false;
  for (int y : samples_.labels) {
    if (y != samples_.labels.front()) {
      multiple_classes = true;
      break;
    }
  }
  if (!multiple_classes) return false;
  re_.train(samples_);
  training_ = false;
  return true;
}

void FadewichSystem::train_with(const ml::Dataset& samples) {
  re_.train(samples);
  training_ = false;
}

SystemState FadewichSystem::export_state() const {
  SystemState state;
  state.tick = static_cast<std::uint64_t>(tick_);
  state.training = training_;
  state.md = md_.export_state();
  state.controller = controller_.state();
  state.kma_last_input = kma_.last_inputs();
  state.sessions.reserve(sessions_.size());
  for (const WorkstationSession& session : sessions_) {
    state.sessions.push_back(session.snapshot());
  }
  state.re_trained = re_.trained();
  if (state.re_trained) state.re = re_.export_classifier();
  state.training_samples = samples_;
  return state;
}

void FadewichSystem::import_state(const SystemState& state) {
  if (state.sessions.size() != sessions_.size()) {
    throw Error("system state has " +
                std::to_string(state.sessions.size()) +
                " sessions, deployment has " +
                std::to_string(sessions_.size()));
  }
  if (state.md.now != static_cast<Tick>(state.tick)) {
    throw Error("system state tick clock disagrees with MD clock");
  }
  if (state.training_samples.size() !=
      state.training_samples.labels.size()) {
    throw Error("system state training set is ragged");
  }
  // Restore the sub-modules first so a throw leaves this system
  // untouched only where the failing module is concerned; callers treat
  // any Error as "snapshot unusable" and fall back to an older one.
  kma_.restore(state.kma_last_input);
  md_.import_state(state.md);
  if (state.re_trained) {
    re_.import_classifier(state.re);
  }
  controller_.restore(state.controller);
  for (std::size_t w = 0; w < sessions_.size(); ++w) {
    sessions_[w].restore(state.sessions[w]);
  }
  tick_ = static_cast<Tick>(state.tick);
  training_ = state.training;
  samples_ = state.training_samples;
  pending_samples_.clear();
  history_.reset(tick_);
  validity_history_.reset(tick_);
}

const WorkstationSession& FadewichSystem::session(
    std::size_t workstation) const {
  FADEWICH_EXPECTS(workstation < sessions_.size());
  return sessions_[workstation];
}

}  // namespace fadewich::core
