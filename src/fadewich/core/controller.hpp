// The control automaton of Fig. 4 with the rules of Table I.
//
//   Quiet --(dW_t >= t_delta: apply Rule 1)--> Noisy
//   Noisy --(dW_t = 0)--> Quiet;  while Noisy apply Rule 2 every step
//
// Rule 1: query RE for the label c of the window's first t_delta seconds;
// if c is a leave label w_i and workstation i has been idle for t_delta,
// Deauthenticate it.  (Table I prints the guard as "c_i not in S(t_delta)";
// deauthenticating a workstation that received input during the window
// would punish a user who demonstrably stayed, so we read the table's
// condition as a typo for membership — the interpretation under which
// every timing in Section V-B and Fig. 9 works out.)
//
// Rule 2: while the variation window continues past t_delta (possible
// overlap of several people moving), every workstation idle for >= 1 s is
// put in Alert State; the session machines then escalate
// Alert -> ScreenSaver -> Locked on their own idle clocks.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "fadewich/common/time.hpp"
#include "fadewich/core/kma.hpp"

namespace fadewich::core {

struct ControllerConfig {
  Seconds t_delta = 4.5;
  Seconds rule2_idle = 1.0;  // S(1): idle threshold for alert state
  // Degraded-classifier fallback: when Rule 1's classification is
  // unavailable (RE untrained, or too few live streams under report
  // loss), fall back to Rule-2 alerting at the Rule-1 instant — idle
  // sessions still escalate to a lock on their own timeouts, so a
  // degraded sensor network fails towards safety rather than silence.
  bool rule2_on_unavailable = true;
};

enum class ControlState { kQuiet, kNoisy };

enum class ActionType { kDeauthenticate, kAlert };

struct Action {
  ActionType type = ActionType::kAlert;
  std::size_t workstation = 0;
  Seconds time = 0.0;
};

class Controller {
 public:
  Controller(ControllerConfig config, std::size_t workstation_count);

  /// Advance one step.  `now` is the current time, `window_duration` is
  /// MD's dW_t.  `classify` is invoked exactly once per variation window,
  /// at the step where dW_t reaches t_delta, and must return the RE label
  /// for the window's first t_delta seconds (or std::nullopt if RE is not
  /// available, e.g. still training — Rule 1 is then skipped).
  std::vector<Action> step(
      Seconds now, Seconds window_duration,
      const KeyboardMouseActivity& kma,
      const std::function<std::optional<int>()>& classify);

  ControlState state() const { return state_; }
  const ControllerConfig& config() const { return config_; }

  /// Restore the FSM state from a persisted snapshot.  A restored kNoisy
  /// controller whose MD re-warms (window duration back to 0) simply
  /// falls back to kQuiet on its next step.
  void restore(ControlState state) { state_ = state; }

 private:
  ControllerConfig config_;
  std::size_t workstation_count_;
  ControlState state_ = ControlState::kQuiet;
};

}  // namespace fadewich::core
