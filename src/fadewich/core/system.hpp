// FadewichSystem: the assembled online pipeline of Fig. 1 — KMA + MD +
// RE + controller + per-workstation session machines.
//
// Usage: feed one tick of RSSI samples per step() call and input events
// via record_input() (in chronological order).  The system starts in
// *training* mode: variation windows are auto-labeled from KMA idle times
// and accumulated; finish_training() fits RE and switches to the online
// phase, where Rule 1 deauthentications and Rule 2 alerts drive the
// session machines.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "fadewich/common/time.hpp"
#include "fadewich/core/auto_labeler.hpp"
#include "fadewich/core/controller.hpp"
#include "fadewich/core/kma.hpp"
#include "fadewich/core/movement_detector.hpp"
#include "fadewich/core/radio_environment.hpp"
#include "fadewich/core/stream_history.hpp"
#include "fadewich/core/workstation.hpp"
#include "fadewich/ml/dataset.hpp"

namespace fadewich::core {

struct SystemConfig {
  double tick_hz = 5.0;
  MovementDetectorConfig md;
  FeatureConfig features;
  ml::SvmConfig svm;
  ControllerConfig controller;
  AutoLabelerConfig labeler;
  Seconds t_id = 5.0;  // alert-state idle before screensaver
  Seconds t_ss = 3.0;  // screensaver grace before lock
};

/// Everything a FadewichSystem has learned or accumulated that must
/// survive a process death: the tick clock, phase, MD's profile, the
/// trained classifier, the controller FSM, KMA idle timers, session
/// states, and the auto-labeled training set.  Deliberately excluded:
/// the RSSI stream history and MD's sliding windows (stale after any
/// downtime; they re-warm in `md.std_window` seconds) and deferred
/// auto-label attempts (at most one entry-confirmation horizon of
/// training samples is lost).
struct SystemState {
  std::uint64_t tick = 0;
  bool training = true;
  MovementDetectorState md;
  ControlState controller = ControlState::kQuiet;
  std::vector<Seconds> kma_last_input;
  std::vector<SessionSnapshot> sessions;
  bool re_trained = false;
  ml::MulticlassSvmState re;  // valid only when re_trained
  ml::Dataset training_samples;
};

class FadewichSystem {
 public:
  FadewichSystem(std::size_t stream_count, std::size_t workstation_count,
                 SystemConfig config = {});

  Seconds now() const { return rate_.to_seconds(tick_); }
  Tick tick() const { return tick_; }
  const TickRate& rate() const { return rate_; }

  /// Record an input event (must not be later than the next step's time).
  void record_input(std::size_t workstation, Seconds t);

  struct StepResult {
    MdState md_state = MdState::kCalibrating;
    std::vector<Action> actions;
    /// RE label when Rule 1 fired on this step.
    std::optional<int> classification;
  };

  /// Consume one tick of RSSI samples.
  StepResult step(std::span<const double> rssi_row);

  /// Consume one tick with a per-stream validity mask (false = the cell
  /// was imputed by the central station after report loss).  Stale
  /// streams are excluded from MD's Σstddev and from RE features; when
  /// too few streams are live, classification is unavailable and the
  /// controller falls back to Rule-2 alerting.  An empty mask means all
  /// valid and is bit-identical to step(rssi_row).
  StepResult step(std::span<const double> rssi_row,
                  std::span<const std::uint8_t> valid);

  // --- Training phase -----------------------------------------------
  bool training() const { return training_; }
  std::size_t training_sample_count() const { return samples_.size(); }
  const ml::Dataset& training_samples() const { return samples_; }

  /// Fit RE on the auto-labeled samples and enter the online phase.
  /// Returns false (and stays in training) if fewer than two classes
  /// have been collected.
  bool finish_training();

  /// Fit RE on externally labeled samples (e.g. supervisor ground truth)
  /// and enter the online phase.
  void train_with(const ml::Dataset& samples);

  // --- Persistence --------------------------------------------------
  /// Export the durable state (see SystemState for what is included).
  SystemState export_state() const;

  /// Restore a persisted state into this system.  The system must have
  /// been constructed with the same stream/workstation counts and
  /// configuration as the one that exported the state; mismatches throw
  /// fadewich::Error.  After the call the pipeline resumes at the saved
  /// tick with empty stream history, so detection re-warms for
  /// `md.std_window` seconds before windows can open again.
  void import_state(const SystemState& state);

  // --- Introspection ------------------------------------------------
  const MovementDetector& md() const { return md_; }
  const KeyboardMouseActivity& kma() const { return kma_; }
  const RadioEnvironment& re() const { return re_; }
  const Controller& controller() const { return controller_; }
  const WorkstationSession& session(std::size_t workstation) const;

 private:
  std::optional<int> classify_current_window();
  std::pair<Tick, Tick> current_window_range() const;
  std::vector<std::vector<double>> current_window_samples() const;
  std::vector<double> current_window_validity() const;
  void collect_training_sample();
  void resolve_pending_entries();

  SystemConfig config_;
  TickRate rate_;
  Tick window_ticks_;  // samples per t_delta feature window

  KeyboardMouseActivity kma_;
  MovementDetector md_;
  RadioEnvironment re_;
  Controller controller_;
  AutoLabeler labeler_;
  StreamHistory history_;
  StreamHistory validity_history_;  // 1.0 fresh / 0.0 imputed, per cell
  std::vector<WorkstationSession> sessions_;

  Tick tick_ = 0;
  std::vector<double> validity_row_;  // scratch, reused every step
  bool training_ = true;
  ml::Dataset samples_;

  struct PendingSample {
    Seconds decision_time = 0.0;
    std::vector<double> features;
    AutoLabeler::Attempt attempt;
  };
  std::deque<PendingSample> pending_samples_;
};

}  // namespace fadewich::core
