// Automatic training-sample labeling (Section IV-D3).
//
// During the training phase FADEWICH labels each variation-window sample
// from KMA idle times alone — no human supervisor:
//
// * A workstation whose idle time at t1 + t_delta sits in the band
//   [t_delta - lower_slack, t_delta + upper_slack] is a *leave
//   candidate*: its input stopped right when the window began.  The band
//   is asymmetric — a user who left cannot have typed after departing,
//   so the lower bound is tight, while the last input may precede the
//   departure by several seconds of natural typing pause, so the upper
//   bound is loose.
// * A workstation idle much longer than the window is *away*; its user
//   may be the person entering right now.  Whether the window was an
//   entry only becomes knowable a few seconds later, when the returning
//   user reaches the desk and types.  Samples observed while anyone is
//   away are therefore deferred and resolved at
//   decision_time + entry_confirmation: fresh input on an away
//   workstation confirms w0; otherwise a single leave candidate labels
//   the sample; anything else is discarded — exactly the paper's
//   "when FADEWICH is uncertain it simply discards the sample".
#pragma once

#include <optional>
#include <vector>

#include "fadewich/common/time.hpp"
#include "fadewich/core/kma.hpp"

namespace fadewich::core {

struct AutoLabelerConfig {
  Seconds t_delta = 4.5;
  Seconds lower_slack = 0.8;   // idle below t_delta - this: user present
  Seconds upper_slack = 6.5;   // covers the pre-departure typing pause
  Seconds long_idle = 60.0;    // user considered away beyond this
  Seconds entry_confirmation = 12.0;  // returning input must arrive by
};

class AutoLabeler {
 public:
  AutoLabeler(AutoLabelerConfig config, std::size_t workstation_count);

  struct Attempt {
    /// Confident immediate label (a single leave candidate, nobody away).
    std::optional<int> label;
    /// Several leave candidates and nobody away: discard immediately.
    bool ambiguous = false;
    /// Workstations whose users are away; non-empty means the decision
    /// must be deferred to resolve().
    std::vector<std::size_t> away_workstations;
    /// Leave candidates observed at decision time (for resolve()).
    std::vector<std::size_t> leave_candidates;

    bool deferred() const { return !away_workstations.empty(); }
  };

  /// Labeling attempt at decision time t1 + t_delta.
  Attempt attempt(const KeyboardMouseActivity& kma,
                  Seconds decision_time) const;

  /// Resolve a deferred attempt once `now` is at least decision_time +
  /// entry_confirmation.  Returns the label, or std::nullopt to discard.
  std::optional<int> resolve(const KeyboardMouseActivity& kma,
                             Seconds decision_time, const Attempt& attempt,
                             Seconds now) const;

  const AutoLabelerConfig& config() const { return config_; }

 private:
  AutoLabelerConfig config_;
  std::size_t workstation_count_;
};

}  // namespace fadewich::core
