#include "fadewich/core/kma.hpp"

#include <limits>
#include <string>
#include <utility>

#include "fadewich/common/error.hpp"

namespace fadewich::core {

KeyboardMouseActivity::KeyboardMouseActivity(std::size_t workstation_count)
    : last_input_(workstation_count,
                  -std::numeric_limits<Seconds>::infinity()) {
  FADEWICH_EXPECTS(workstation_count >= 1);
}

void KeyboardMouseActivity::record_input(std::size_t workstation, Seconds t) {
  FADEWICH_EXPECTS(workstation < last_input_.size());
  if (t > last_input_[workstation]) last_input_[workstation] = t;
}

Seconds KeyboardMouseActivity::idle_time(std::size_t workstation,
                                         Seconds t) const {
  FADEWICH_EXPECTS(workstation < last_input_.size());
  return t - last_input_[workstation];
}

std::vector<std::size_t> KeyboardMouseActivity::idle_set(Seconds t,
                                                         Seconds s) const {
  std::vector<std::size_t> out;
  for (std::size_t w = 0; w < last_input_.size(); ++w) {
    if (idle_time(w, t) >= s) out.push_back(w);
  }
  return out;
}

bool KeyboardMouseActivity::idle_for(std::size_t workstation, Seconds t,
                                     Seconds s) const {
  return idle_time(workstation, t) >= s;
}

void KeyboardMouseActivity::restore(std::vector<Seconds> last_inputs) {
  if (last_inputs.size() != last_input_.size()) {
    throw Error("kma state has " + std::to_string(last_inputs.size()) +
                " workstations, deployment has " +
                std::to_string(last_input_.size()));
  }
  last_input_ = std::move(last_inputs);
}

}  // namespace fadewich::core
