#include "fadewich/core/features.hpp"

#include "fadewich/common/error.hpp"
#include "fadewich/common/scratch_arena.hpp"
#include "fadewich/common/simd_kernels.hpp"
#include "fadewich/stats/autocorrelation.hpp"
#include "fadewich/stats/descriptive.hpp"
#include "fadewich/stats/histogram.hpp"

namespace fadewich::core {

void append_stream_features(std::span<const double> window,
                            const FeatureConfig& config,
                            std::vector<double>& out) {
  FADEWICH_EXPECTS(window.size() > config.autocorr_lag);
  if (config.use_variance) out.push_back(stats::variance(window));
  if (config.use_entropy) out.push_back(stats::value_entropy(window));
  if (config.use_autocorrelation) {
    out.push_back(stats::autocorrelation(window, config.autocorr_lag));
  }
}

namespace {

// Batched path for the common case: every stream window has the same
// length.  The windows are transposed into one row-major [rows x
// streams] block so the column-reduction kernels compute all variances
// and lag products SIMD-wide; the per-column accumulation runs in the
// same index order as stats::variance / stats::autocorrelation, so each
// stream's features are bit-identical to append_stream_features.
// Entropy stays scalar — it is a histogram walk, not a reduction.
std::vector<double> extract_features_batched(
    const std::vector<std::vector<double>>& stream_windows,
    std::size_t rows, const FeatureConfig& config) {
  const std::size_t n = stream_windows.size();
  const std::size_t lag = config.autocorr_lag;
  const simd::KernelTable& kt = simd::active_kernels();
  auto& arena = common::ScratchArena::local();
  const auto scratch_frame = arena.frame();
  const std::span<double> data = arena.get<double>(rows * n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& window = stream_windows[i];
    for (std::size_t r = 0; r < rows; ++r) data[r * n + i] = window[r];
  }
  const std::span<double> mean = arena.get<double>(n);
  const std::span<double> var = arena.get<double>(n);
  kt.colsum(data.data(), rows, n, mean.data(), n);
  const double rows_d = static_cast<double>(rows);
  for (std::size_t i = 0; i < n; ++i) mean[i] /= rows_d;
  kt.coldev2(data.data(), rows, n, mean.data(), var.data(), n);
  for (std::size_t i = 0; i < n; ++i) var[i] /= rows_d;
  std::span<double> ac;
  if (config.use_autocorrelation) {
    ac = arena.get<double>(n);
    kt.collagprod(data.data(), rows, lag, n, mean.data(), ac.data(), n);
    const double denom_rows = static_cast<double>(rows - lag);
    for (std::size_t i = 0; i < n; ++i) {
      ac[i] = var[i] == 0.0 ? 0.0 : ac[i] / (denom_rows * var[i]);
    }
  }
  std::vector<double> out;
  out.reserve(n * config.features_per_stream());
  for (std::size_t i = 0; i < n; ++i) {
    if (config.use_variance) out.push_back(var[i]);
    if (config.use_entropy) {
      out.push_back(stats::value_entropy(stream_windows[i]));
    }
    if (config.use_autocorrelation) out.push_back(ac[i]);
  }
  return out;
}

}  // namespace

std::vector<double> extract_features(
    const std::vector<std::vector<double>>& stream_windows,
    const FeatureConfig& config) {
  FADEWICH_EXPECTS(!stream_windows.empty());
  const std::size_t rows = stream_windows.front().size();
  bool uniform = rows > config.autocorr_lag;
  for (const auto& window : stream_windows) {
    uniform = uniform && window.size() == rows;
  }
  if (uniform && (config.use_variance || config.use_autocorrelation)) {
    return extract_features_batched(stream_windows, rows, config);
  }
  // Ragged windows (or entropy-only configs): per-stream scalar path.
  std::vector<double> out;
  out.reserve(stream_windows.size() * config.features_per_stream());
  for (const auto& window : stream_windows) {
    append_stream_features(window, config, out);
  }
  return out;
}

std::vector<std::string> feature_names(
    const std::vector<std::pair<std::size_t, std::size_t>>& pairs,
    const FeatureConfig& config) {
  std::vector<std::string> names;
  names.reserve(pairs.size() * config.features_per_stream());
  for (const auto& [tx, rx] : pairs) {
    const std::string stem = "d" + std::to_string(tx + 1) + "-d" +
                             std::to_string(rx + 1) + "-";
    if (config.use_variance) names.push_back(stem + "var");
    if (config.use_entropy) names.push_back(stem + "ent");
    if (config.use_autocorrelation) names.push_back(stem + "ac");
  }
  return names;
}

}  // namespace fadewich::core
