#include "fadewich/core/features.hpp"

#include "fadewich/common/error.hpp"
#include "fadewich/stats/autocorrelation.hpp"
#include "fadewich/stats/descriptive.hpp"
#include "fadewich/stats/histogram.hpp"

namespace fadewich::core {

void append_stream_features(std::span<const double> window,
                            const FeatureConfig& config,
                            std::vector<double>& out) {
  FADEWICH_EXPECTS(window.size() > config.autocorr_lag);
  if (config.use_variance) out.push_back(stats::variance(window));
  if (config.use_entropy) out.push_back(stats::value_entropy(window));
  if (config.use_autocorrelation) {
    out.push_back(stats::autocorrelation(window, config.autocorr_lag));
  }
}

std::vector<double> extract_features(
    const std::vector<std::vector<double>>& stream_windows,
    const FeatureConfig& config) {
  FADEWICH_EXPECTS(!stream_windows.empty());
  std::vector<double> out;
  out.reserve(stream_windows.size() * config.features_per_stream());
  for (const auto& window : stream_windows) {
    append_stream_features(window, config, out);
  }
  return out;
}

std::vector<std::string> feature_names(
    const std::vector<std::pair<std::size_t, std::size_t>>& pairs,
    const FeatureConfig& config) {
  std::vector<std::string> names;
  names.reserve(pairs.size() * config.features_per_stream());
  for (const auto& [tx, rx] : pairs) {
    const std::string stem = "d" + std::to_string(tx + 1) + "-d" +
                             std::to_string(rx + 1) + "-";
    if (config.use_variance) names.push_back(stem + "var");
    if (config.use_entropy) names.push_back(stem + "ent");
    if (config.use_autocorrelation) names.push_back(stem + "ac");
  }
  return names;
}

}  // namespace fadewich::core
