#include "fadewich/core/movement_detector.hpp"

#include <algorithm>

#include "fadewich/common/error.hpp"
#include "fadewich/obs/obs.hpp"

namespace fadewich::core {

namespace {

// Handles are fetched once; updates are sharded atomics guarded by the
// runtime toggle, so the per-tick hot path pays only on the rare events
// it counts (opens, closes, degraded ticks) — never per sample.
struct MdMetrics {
  obs::Counter opened = obs::registry().counter(
      "fadewich_md_windows_opened_total", "variation windows opened");
  obs::Counter closed = obs::registry().counter(
      "fadewich_md_windows_closed_total", "variation windows completed");
  obs::Counter degraded = obs::registry().counter(
      "fadewich_md_degraded_ticks_total",
      "ticks below min_live_fraction (s_t held)");
  obs::Histogram duration = obs::registry().histogram(
      "fadewich_md_window_seconds",
      "completed variation-window durations");
  static MdMetrics& get() {
    static MdMetrics metrics;
    return metrics;
  }
};

}  // namespace

namespace {

std::size_t md_window_ticks(const TickRate& rate,
                            const MovementDetectorConfig& config) {
  return static_cast<std::size_t>(
      std::max<Tick>(2, rate.to_ticks_ceil(config.std_window)));
}

}  // namespace

MovementDetector::MovementDetector(std::size_t stream_count, double tick_hz,
                                   MovementDetectorConfig config)
    : rate_(tick_hz),
      config_(config),
      windows_(std::max<std::size_t>(stream_count, 1),
               md_window_ticks(rate_, config)),
      stddev_row_(stream_count, 0.0),
      profile_(config.profile),
      calibration_ticks_(rate_.to_ticks_ceil(config.calibration)),
      merge_gap_ticks_(rate_.to_ticks_ceil(config.merge_gap)) {
  FADEWICH_EXPECTS(stream_count >= 1);
  FADEWICH_EXPECTS(config.std_window > 0.0);
  FADEWICH_EXPECTS(config.min_live_fraction > 0.0 &&
                   config.min_live_fraction <= 1.0);
}

MdState MovementDetector::step(std::span<const double> rssi_row) {
  return step(rssi_row, {});
}

MdState MovementDetector::step(std::span<const double> rssi_row,
                               std::span<const std::uint8_t> valid) {
  FADEWICH_EXPECTS(rssi_row.size() == windows_.streams());
  FADEWICH_EXPECTS(valid.empty() || valid.size() == windows_.streams());
  const Tick tick = now_++;

  // Two kernel passes over the bank: one lockstep Welford row update, one
  // batched stddev — constant work per (stream, tick) regardless of the
  // window length d, with the per-stream state walked SIMD-wide instead
  // of object-by-object.  Stale samples (valid mask false) still enter
  // the windows — the row is the station's best reconstruction — but
  // only live streams contribute to s_t, summed in stream order so the
  // result matches the per-object loop bit-for-bit.
  windows_.push_row(rssi_row);
  windows_.stddev_into(stddev_row_);
  double st = 0.0;
  std::size_t live = 0;
  for (std::size_t i = 0; i < windows_.streams(); ++i) {
    if (valid.empty() || valid[i]) {
      st += stddev_row_[i];
      ++live;
    }
  }
  if (!windows_warm_) {
    // Every stream receives exactly one sample per tick, so the windows
    // fill in lockstep.
    if (!windows_.full()) return MdState::kCalibrating;
    windows_warm_ = true;
  }

  const auto n = static_cast<double>(windows_.streams());
  const double live_fraction = static_cast<double>(live) / n;
  last_live_fraction_ = live_fraction;
  const bool degraded = live_fraction < config_.min_live_fraction;
  if (degraded) {
    // Too few fresh streams to trust s_t: hold the previous value so the
    // anomaly state persists through the outage instead of flapping.
    ++degraded_ticks_;
    MdMetrics::get().degraded.inc();
    st = last_st_;
  } else if (live < windows_.streams()) {
    // Rescale the partial sum so the threshold calibrated on all streams
    // still applies.  (Skipped when all streams are live, keeping the
    // fault-free path bit-identical.)
    st = st * n / static_cast<double>(live);
  }
  last_st_ = st;

  if (!profile_.initialized()) {
    if (!degraded) calibration_buffer_.push_back(st);
    if (static_cast<Tick>(calibration_buffer_.size()) >=
        calibration_ticks_) {
      profile_.initialize(std::move(calibration_buffer_));
      calibration_buffer_.clear();
    }
    return MdState::kCalibrating;
  }

  const bool anomalous = st >= profile_.threshold();
  if (!degraded) profile_.offer(st);

  if (anomalous) {
    if (open_ && tick - last_anomalous_ <= merge_gap_ticks_) {
      open_->end = tick;  // extend (possibly across a short gap)
    } else {
      if (open_) close_window(*open_);
      open_ = VariationWindow{tick, tick};
      MdMetrics::get().opened.inc();
    }
    last_anomalous_ = tick;
    return MdState::kAnomalous;
  }

  if (open_ && tick - last_anomalous_ > merge_gap_ticks_) {
    close_window(*open_);
    open_.reset();
  }
  return MdState::kNormal;
}

void MovementDetector::close_window(const VariationWindow& window) {
  completed_.push_back(window);
  auto& metrics = MdMetrics::get();
  metrics.closed.inc();
  metrics.duration.observe(rate_.to_seconds(window.end - window.begin + 1));
}

MovementDetectorState MovementDetector::export_state() const {
  MovementDetectorState state;
  state.now = now_;
  state.last_st = last_st_;
  state.degraded_ticks = degraded_ticks_;
  if (profile_.initialized()) {
    state.profile_samples = profile_.samples_snapshot();
    state.profile_queue = profile_.queue_snapshot();
  } else {
    state.calibration_buffer = calibration_buffer_;
  }
  return state;
}

void MovementDetector::import_state(const MovementDetectorState& state) {
  if (state.now < 0) throw Error("md state has a negative tick clock");
  if (static_cast<Tick>(state.calibration_buffer.size()) >
      calibration_ticks_) {
    throw Error("md state calibration buffer exceeds the calibration span");
  }
  if (state.profile_samples.empty()) {
    // Still calibrating at save time: resume accumulating quiet samples.
    profile_ = NormalProfile(config_.profile);
    calibration_buffer_ = state.calibration_buffer;
  } else {
    profile_.restore(state.profile_samples, state.profile_queue);
    calibration_buffer_.clear();
  }
  now_ = state.now;
  last_st_ = state.last_st;
  degraded_ticks_ = state.degraded_ticks;
  last_live_fraction_ = 1.0;
  // The sliding windows restart empty: detection resumes once they fill.
  windows_.clear();
  windows_warm_ = false;
  open_.reset();
  completed_.clear();
  last_anomalous_ = -1;
}

std::optional<VariationWindow> MovementDetector::current_window() const {
  return open_;
}

Seconds MovementDetector::current_window_duration() const {
  if (!open_) return 0.0;
  // The window is still live: dW_t runs from its first anomalous tick to
  // the present.
  return rate_.to_seconds(now_ - open_->begin);
}

}  // namespace fadewich::core
