#include "fadewich/core/movement_detector.hpp"

#include <algorithm>

#include "fadewich/common/error.hpp"

namespace fadewich::core {

MovementDetector::MovementDetector(std::size_t stream_count, double tick_hz,
                                   MovementDetectorConfig config)
    : rate_(tick_hz),
      config_(config),
      profile_(config.profile),
      calibration_ticks_(rate_.to_ticks_ceil(config.calibration)),
      merge_gap_ticks_(rate_.to_ticks_ceil(config.merge_gap)) {
  FADEWICH_EXPECTS(stream_count >= 1);
  FADEWICH_EXPECTS(config.std_window > 0.0);
  const auto window_ticks = static_cast<std::size_t>(
      std::max<Tick>(2, rate_.to_ticks_ceil(config.std_window)));
  windows_.reserve(stream_count);
  for (std::size_t i = 0; i < stream_count; ++i) {
    windows_.emplace_back(window_ticks);
  }
}

MdState MovementDetector::step(std::span<const double> rssi_row) {
  FADEWICH_EXPECTS(rssi_row.size() == windows_.size());
  const Tick tick = now_++;

  double st = 0.0;
  bool all_full = true;
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    windows_[i].push(rssi_row[i]);
    all_full = all_full && windows_[i].full();
    if (all_full) st += windows_[i].stddev();
  }
  if (!all_full) return MdState::kCalibrating;
  // Recompute cleanly: the loop above only accumulated while the prefix
  // was full; with all windows full, sum every stream.
  st = 0.0;
  for (const auto& w : windows_) st += w.stddev();
  last_st_ = st;

  if (!profile_.initialized()) {
    calibration_buffer_.push_back(st);
    if (static_cast<Tick>(calibration_buffer_.size()) >=
        calibration_ticks_) {
      profile_.initialize(std::move(calibration_buffer_));
      calibration_buffer_.clear();
    }
    return MdState::kCalibrating;
  }

  const bool anomalous = st >= profile_.threshold();
  profile_.offer(st);

  if (anomalous) {
    if (open_ && tick - last_anomalous_ <= merge_gap_ticks_) {
      open_->end = tick;  // extend (possibly across a short gap)
    } else {
      if (open_) completed_.push_back(*open_);
      open_ = VariationWindow{tick, tick};
    }
    last_anomalous_ = tick;
    return MdState::kAnomalous;
  }

  if (open_ && tick - last_anomalous_ > merge_gap_ticks_) {
    completed_.push_back(*open_);
    open_.reset();
  }
  return MdState::kNormal;
}

std::optional<VariationWindow> MovementDetector::current_window() const {
  return open_;
}

Seconds MovementDetector::current_window_duration() const {
  if (!open_) return 0.0;
  // The window is still live: dW_t runs from its first anomalous tick to
  // the present.
  return rate_.to_seconds(now_ - open_->begin);
}

}  // namespace fadewich::core
