#include "fadewich/core/controller.hpp"

#include "fadewich/common/error.hpp"
#include "fadewich/core/radio_environment.hpp"

namespace fadewich::core {

Controller::Controller(ControllerConfig config,
                       std::size_t workstation_count)
    : config_(config), workstation_count_(workstation_count) {
  FADEWICH_EXPECTS(config_.t_delta > 0.0);
  FADEWICH_EXPECTS(config_.rule2_idle > 0.0);
  FADEWICH_EXPECTS(workstation_count >= 1);
}

std::vector<Action> Controller::step(
    Seconds now, Seconds window_duration,
    const KeyboardMouseActivity& kma,
    const std::function<std::optional<int>()>& classify) {
  FADEWICH_EXPECTS(window_duration >= 0.0);
  std::vector<Action> actions;

  switch (state_) {
    case ControlState::kQuiet:
      if (window_duration >= config_.t_delta) {
        // Rule 1, exactly once per window, right as it reaches t_delta.
        const std::optional<int> label = classify();
        if (label && is_leave_label(*label)) {
          const std::size_t w = workstation_of_label(*label);
          if (w < workstation_count_ &&
              kma.idle_for(w, now, config_.t_delta)) {
            actions.push_back({ActionType::kDeauthenticate, w, now});
          }
        } else if (!label && config_.rule2_on_unavailable) {
          // No trustworthy classification: movement definitely happened
          // (MD crossed t_delta), so protect every idle workstation via
          // Rule 2 instead of doing nothing.
          for (std::size_t w : kma.idle_set(now, config_.rule2_idle)) {
            actions.push_back({ActionType::kAlert, w, now});
          }
        }
        state_ = ControlState::kNoisy;
      }
      break;

    case ControlState::kNoisy:
      if (window_duration == 0.0) {
        state_ = ControlState::kQuiet;
      } else {
        // Rule 2: the window is continuing past t_delta; other users may
        // be moving too, so protect every idle workstation.
        for (std::size_t w :
             kma.idle_set(now, config_.rule2_idle)) {
          actions.push_back({ActionType::kAlert, w, now});
        }
      }
      break;
  }
  return actions;
}

}  // namespace fadewich::core
