#include "fadewich/core/controller.hpp"

#include "fadewich/common/error.hpp"
#include "fadewich/core/radio_environment.hpp"
#include "fadewich/obs/obs.hpp"

namespace fadewich::core {

namespace {

struct CtlMetrics {
  obs::Counter rule1_deauth = obs::registry().counter(
      "fadewich_ctl_rule1_deauth_total",
      "Rule 1 deauthentications issued");
  obs::Counter rule1_suppressed = obs::registry().counter(
      "fadewich_ctl_rule1_suppressed_total",
      "Rule 1 windows with an active or unknown workstation");
  obs::Counter rule1_unavailable = obs::registry().counter(
      "fadewich_ctl_rule1_unavailable_total",
      "Rule 1 windows with no trustworthy classification");
  obs::Counter rule2_alerts = obs::registry().counter(
      "fadewich_ctl_rule2_alerts_total", "Rule 2 alerts issued");
  obs::Histogram deauth_latency = obs::registry().histogram(
      "fadewich_ctl_deauth_latency_seconds",
      "movement-start to deauth command (window age at Rule 1)");
  static CtlMetrics& get() {
    static CtlMetrics metrics;
    return metrics;
  }
};

}  // namespace

Controller::Controller(ControllerConfig config,
                       std::size_t workstation_count)
    : config_(config), workstation_count_(workstation_count) {
  FADEWICH_EXPECTS(config_.t_delta > 0.0);
  FADEWICH_EXPECTS(config_.rule2_idle > 0.0);
  FADEWICH_EXPECTS(workstation_count >= 1);
}

std::vector<Action> Controller::step(
    Seconds now, Seconds window_duration,
    const KeyboardMouseActivity& kma,
    const std::function<std::optional<int>()>& classify) {
  FADEWICH_EXPECTS(window_duration >= 0.0);
  std::vector<Action> actions;

  switch (state_) {
    case ControlState::kQuiet:
      if (window_duration >= config_.t_delta) {
        // Rule 1, exactly once per window, right as it reaches t_delta.
        auto& metrics = CtlMetrics::get();
        const std::optional<int> label = classify();
        if (label && is_leave_label(*label)) {
          const std::size_t w = workstation_of_label(*label);
          if (w < workstation_count_ &&
              kma.idle_for(w, now, config_.t_delta)) {
            actions.push_back({ActionType::kDeauthenticate, w, now});
            metrics.rule1_deauth.inc();
            // Latency from movement start to the deauth command is the
            // window's age when Rule 1 fires.
            metrics.deauth_latency.observe(window_duration);
          } else {
            metrics.rule1_suppressed.inc();
          }
        } else if (!label) {
          metrics.rule1_unavailable.inc();
          if (config_.rule2_on_unavailable) {
            // No trustworthy classification: movement definitely happened
            // (MD crossed t_delta), so protect every idle workstation via
            // Rule 2 instead of doing nothing.
            for (std::size_t w : kma.idle_set(now, config_.rule2_idle)) {
              actions.push_back({ActionType::kAlert, w, now});
              metrics.rule2_alerts.inc();
            }
          }
        }
        state_ = ControlState::kNoisy;
      }
      break;

    case ControlState::kNoisy:
      if (window_duration == 0.0) {
        state_ = ControlState::kQuiet;
      } else {
        // Rule 2: the window is continuing past t_delta; other users may
        // be moving too, so protect every idle workstation.
        for (std::size_t w :
             kma.idle_set(now, config_.rule2_idle)) {
          actions.push_back({ActionType::kAlert, w, now});
          CtlMetrics::get().rule2_alerts.inc();
        }
      }
      break;
  }
  return actions;
}

}  // namespace fadewich::core
