#include "fadewich/core/radio_environment.hpp"

#include <algorithm>

#include "fadewich/common/error.hpp"
#include "fadewich/obs/obs.hpp"

namespace fadewich::core {

namespace {

// Per-label counters are created lazily (labels are open-ended small
// ints).  Classification happens at most once per variation window, so
// the name lookup is off the per-tick hot path.
void count_label(int label) {
  if (!obs::enabled()) return;
  obs::registry()
      .counter("fadewich_re_classified_total{label=\"" +
                   std::to_string(label) + "\"}",
               "classifications by predicted label")
      .inc();
}

}  // namespace

RadioEnvironment::RadioEnvironment(FeatureConfig features, ml::SvmConfig svm)
    : features_(features), svm_(svm) {}

std::vector<double> RadioEnvironment::features_from(
    const std::vector<std::vector<double>>& stream_windows) const {
  return extract_features(stream_windows, features_);
}

std::vector<double> RadioEnvironment::features_from(
    const std::vector<std::vector<double>>& stream_windows,
    std::span<const double> validity) const {
  std::vector<double> features = extract_features(stream_windows, features_);
  if (validity.empty()) return features;
  FADEWICH_EXPECTS(validity.size() == stream_windows.size());
  const std::size_t per_stream = features_.features_per_stream();
  for (std::size_t s = 0; s < validity.size(); ++s) {
    if (validity[s] >= features_.min_stream_validity) continue;
    std::fill_n(features.begin() +
                    static_cast<std::ptrdiff_t>(s * per_stream),
                per_stream, 0.0);
  }
  return features;
}

std::size_t RadioEnvironment::live_streams(
    std::span<const double> validity) const {
  std::size_t live = 0;
  for (const double v : validity) {
    if (v >= features_.min_stream_validity) ++live;
  }
  return live;
}

std::optional<int> RadioEnvironment::classify_degraded(
    const std::vector<std::vector<double>>& stream_windows,
    std::span<const double> validity) const {
  if (!trained()) return std::nullopt;
  if (!validity.empty()) {
    FADEWICH_EXPECTS(validity.size() == stream_windows.size());
    const double live = static_cast<double>(live_streams(validity));
    const double total = static_cast<double>(validity.size());
    if (live / total < features_.min_live_stream_fraction) {
      if (obs::enabled()) {
        obs::registry()
            .counter("fadewich_re_degraded_unavailable_total",
                     "classifications refused for lack of live streams")
            .inc();
      }
      return std::nullopt;
    }
  }
  return classify(features_from(stream_windows, validity));
}

void RadioEnvironment::train(const ml::Dataset& samples) {
  svm_.train(samples);
}

int RadioEnvironment::classify(const std::vector<double>& features) const {
  const int label = svm_.predict(features);
  count_label(label);
  return label;
}

void RadioEnvironment::classify_block(
    const std::vector<std::vector<double>>& features,
    std::span<int> out) const {
  svm_.predict_block(features, out);
  for (const int label : out) count_label(label);
}

}  // namespace fadewich::core
