#include "fadewich/core/radio_environment.hpp"

#include <algorithm>

#include "fadewich/common/error.hpp"

namespace fadewich::core {

RadioEnvironment::RadioEnvironment(FeatureConfig features, ml::SvmConfig svm)
    : features_(features), svm_(svm) {}

std::vector<double> RadioEnvironment::features_from(
    const std::vector<std::vector<double>>& stream_windows) const {
  return extract_features(stream_windows, features_);
}

std::vector<double> RadioEnvironment::features_from(
    const std::vector<std::vector<double>>& stream_windows,
    std::span<const double> validity) const {
  std::vector<double> features = extract_features(stream_windows, features_);
  if (validity.empty()) return features;
  FADEWICH_EXPECTS(validity.size() == stream_windows.size());
  const std::size_t per_stream = features_.features_per_stream();
  for (std::size_t s = 0; s < validity.size(); ++s) {
    if (validity[s] >= features_.min_stream_validity) continue;
    std::fill_n(features.begin() +
                    static_cast<std::ptrdiff_t>(s * per_stream),
                per_stream, 0.0);
  }
  return features;
}

std::size_t RadioEnvironment::live_streams(
    std::span<const double> validity) const {
  std::size_t live = 0;
  for (const double v : validity) {
    if (v >= features_.min_stream_validity) ++live;
  }
  return live;
}

std::optional<int> RadioEnvironment::classify_degraded(
    const std::vector<std::vector<double>>& stream_windows,
    std::span<const double> validity) const {
  if (!trained()) return std::nullopt;
  if (!validity.empty()) {
    FADEWICH_EXPECTS(validity.size() == stream_windows.size());
    const double live = static_cast<double>(live_streams(validity));
    const double total = static_cast<double>(validity.size());
    if (live / total < features_.min_live_stream_fraction) {
      return std::nullopt;
    }
  }
  return classify(features_from(stream_windows, validity));
}

void RadioEnvironment::train(const ml::Dataset& samples) {
  svm_.train(samples);
}

int RadioEnvironment::classify(const std::vector<double>& features) const {
  return svm_.predict(features);
}

}  // namespace fadewich::core
