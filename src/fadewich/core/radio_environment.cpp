#include "fadewich/core/radio_environment.hpp"

namespace fadewich::core {

RadioEnvironment::RadioEnvironment(FeatureConfig features, ml::SvmConfig svm)
    : features_(features), svm_(svm) {}

std::vector<double> RadioEnvironment::features_from(
    const std::vector<std::vector<double>>& stream_windows) const {
  return extract_features(stream_windows, features_);
}

void RadioEnvironment::train(const ml::Dataset& samples) {
  svm_.train(samples);
}

int RadioEnvironment::classify(const std::vector<double>& features) const {
  return svm_.predict(features);
}

}  // namespace fadewich::core
