// Per-workstation session state machine (Section IV-F's actions).
//
//   Active --(alert, idle>=1s)--> Alert
//   Alert --(idle >= tID)--> ScreenSaver --(idle >= tID+tss)--> Locked
//   Alert --(input)--> Active        ScreenSaver --(input)--> Active
//   any --(Rule 1 Deauthenticate)--> Locked
//   Locked --(input = re-login)--> Active
//
// An Alert that is no longer refreshed by the controller (the variation
// window ended) and has not yet reached the screensaver decays back to
// Active.  Transitions are timestamped so evaluations can account
// deauthentication delays (cases A/B of Fig. 5) and usability costs
// (screensaver cancellations, forced re-logins).
//
// Arming policy: this machine errs fail-secure.  An alert arms whenever
// the lock edge (idle = tID + tss) is still ahead, so a user whose idle
// edge slipped past tID before Rule 2 began (the departed user's input
// stops *before* the movement is detected) is still escalated and
// locked.  The paper's analytic usability accounting
// (eval/usability.cpp) is slightly laxer; the deployed machine prefers
// locking a departed session over saving a present user one screensaver
// cancel.
#pragma once

#include <vector>

#include "fadewich/common/time.hpp"

namespace fadewich::core {

enum class SessionState { kActive, kAlert, kScreenSaver, kLocked };

struct SessionTransition {
  SessionState to = SessionState::kActive;
  Seconds time = 0.0;
};

/// Durable session state for persistence.  The transition log is audit
/// output, not state the machine depends on, so it is not persisted.
struct SessionSnapshot {
  SessionState state = SessionState::kActive;
  Seconds last_alert = -1.0e18;
};

class WorkstationSession {
 public:
  WorkstationSession(Seconds t_id, Seconds t_ss);

  SessionState state() const { return state_; }
  const std::vector<SessionTransition>& transitions() const {
    return log_;
  }

  /// Controller issued an Alert-State action at `now` (refreshing counts
  /// as issuing).  `idle_time` is the workstation's current idle time;
  /// the alert arms only while the lock edge (tID + tss of idle) is
  /// still ahead — a user already idle past it when the alert arrives
  /// was never armed, so entering alert cannot retroactively lock them.
  void on_alert(Seconds now, Seconds idle_time);

  /// Controller issued Rule 1's Deauthenticate at `now`.
  void on_deauthenticate(Seconds now);

  /// The user generated input at `now`.  Cancels alert/screensaver; from
  /// Locked this is the re-login.
  void on_input(Seconds now);

  /// Advance time: progress Alert -> ScreenSaver -> Locked based on the
  /// idle time reported by KMA, and decay unrefreshed alerts.
  /// `idle_time` is seconds since the workstation's last input.
  void tick(Seconds now, Seconds idle_time);

  /// Durable state for persistence.
  SessionSnapshot snapshot() const { return {state_, last_alert_}; }

  /// Restore persisted state; the transition log restarts empty.
  void restore(const SessionSnapshot& snapshot);

 private:
  void transition(SessionState to, Seconds now);

  Seconds t_id_;
  Seconds t_ss_;
  SessionState state_ = SessionState::kActive;
  Seconds last_alert_ = -1.0e18;
  std::vector<SessionTransition> log_;
};

}  // namespace fadewich::core
