#include "fadewich/core/auto_labeler.hpp"

#include "fadewich/common/error.hpp"
#include "fadewich/core/radio_environment.hpp"

namespace fadewich::core {

AutoLabeler::AutoLabeler(AutoLabelerConfig config,
                         std::size_t workstation_count)
    : config_(config), workstation_count_(workstation_count) {
  FADEWICH_EXPECTS(workstation_count >= 1);
  FADEWICH_EXPECTS(config_.t_delta > 0.0);
  FADEWICH_EXPECTS(config_.lower_slack >= 0.0);
  FADEWICH_EXPECTS(config_.upper_slack >= 0.0);
  FADEWICH_EXPECTS(config_.long_idle >
                   config_.t_delta + config_.upper_slack);
}

AutoLabeler::Attempt AutoLabeler::attempt(const KeyboardMouseActivity& kma,
                                          Seconds decision_time) const {
  Attempt out;
  for (std::size_t w = 0; w < workstation_count_; ++w) {
    const Seconds idle = kma.idle_time(w, decision_time);
    if (idle >= config_.long_idle) {
      out.away_workstations.push_back(w);
    } else if (idle >= config_.t_delta - config_.lower_slack &&
               idle <= config_.t_delta + config_.upper_slack) {
      out.leave_candidates.push_back(w);
    }
  }
  if (out.deferred()) return out;  // resolved later
  if (out.leave_candidates.size() == 1) {
    out.label = label_for_workstation(out.leave_candidates[0]);
  } else if (out.leave_candidates.size() > 1) {
    out.ambiguous = true;
  }
  return out;
}

std::optional<int> AutoLabeler::resolve(const KeyboardMouseActivity& kma,
                                        Seconds decision_time,
                                        const Attempt& attempt,
                                        Seconds now) const {
  FADEWICH_EXPECTS(now >= decision_time + config_.entry_confirmation);
  // Fresh input on an away workstation: the away user returned — the
  // variation window was their entrance.
  for (std::size_t w : attempt.away_workstations) {
    if (kma.idle_time(w, now) < now - decision_time) {
      return kLabelEntered;
    }
  }
  // Nobody came back: if exactly one workstation went idle at window
  // start, it was that user's leave.
  if (attempt.leave_candidates.size() == 1) {
    return label_for_workstation(attempt.leave_candidates[0]);
  }
  return std::nullopt;
}

}  // namespace fadewich::core
