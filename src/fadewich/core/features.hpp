// RE feature extraction (Section IV-D1).
//
// For every stream's window V^(i)_{t1, t1+t_delta} three features are
// computed: variance, entropy of the window's value-frequency histogram,
// and autocorrelation.  The sample's feature vector concatenates them per
// stream in stream order: [var_0, ent_0, ac_0, var_1, ent_1, ac_1, ...].
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace fadewich::core {

struct FeatureConfig {
  std::size_t autocorr_lag = 1;
  // Ablation switches: the paper uses all three feature families.
  bool use_variance = true;
  bool use_entropy = true;
  bool use_autocorrelation = true;
  // Degraded-input policy (fault-tolerant reporting): a stream whose
  // fraction of fresh samples over the feature window falls below
  // `min_stream_validity` contributes zeroed features (its imputed
  // window would mostly measure the imputation, not the radio), and when
  // fewer than `min_live_stream_fraction` of all streams are live the
  // classification is declared unavailable — the controller then falls
  // back to Rule-2 timeouts instead of trusting a starved classifier.
  double min_stream_validity = 0.5;
  double min_live_stream_fraction = 0.5;

  std::size_t features_per_stream() const {
    return static_cast<std::size_t>(use_variance) +
           static_cast<std::size_t>(use_entropy) +
           static_cast<std::size_t>(use_autocorrelation);
  }
};

/// Features of one stream window.  Requires a window longer than the
/// autocorrelation lag.
void append_stream_features(std::span<const double> window,
                            const FeatureConfig& config,
                            std::vector<double>& out);

/// Full sample: one window per stream, concatenated features.
std::vector<double> extract_features(
    const std::vector<std::vector<double>>& stream_windows,
    const FeatureConfig& config);

/// Human-readable feature names in extraction order, e.g. "d9-d2-ent"
/// (Table V's naming).  `pairs` holds the (tx, rx) sensor indices of each
/// stream, 0-based; names are 1-based like the paper.
std::vector<std::string> feature_names(
    const std::vector<std::pair<std::size_t, std::size_t>>& pairs,
    const FeatureConfig& config);

}  // namespace fadewich::core
