// Keyboard/Mouse Activity module (Section IV-B).
//
// Tracks the last input instant of every workstation and answers the one
// query the rest of the system needs: which workstations have been idle
// for at least s seconds at time t — the set S_t^(s).
#pragma once

#include <cstddef>
#include <vector>

#include "fadewich/common/time.hpp"

namespace fadewich::core {

class KeyboardMouseActivity {
 public:
  /// Requires at least one workstation.
  explicit KeyboardMouseActivity(std::size_t workstation_count);

  std::size_t workstation_count() const { return last_input_.size(); }

  /// Record an input event.  Events may arrive out of order; only the
  /// maximum matters.
  void record_input(std::size_t workstation, Seconds t);

  /// Idle time of a workstation at time t: seconds since its last input,
  /// or infinity if it never received input.  Requires t >= last input
  /// (clocks don't run backwards past recorded activity; queries between
  /// out-of-order arrivals are answered against what is known).
  Seconds idle_time(std::size_t workstation, Seconds t) const;

  /// S_t^(s): workstations idle for at least s seconds at time t.
  std::vector<std::size_t> idle_set(Seconds t, Seconds s) const;

  /// True if the workstation is in S_t^(s).
  bool idle_for(std::size_t workstation, Seconds t, Seconds s) const;

  /// Last-input instants for persistence (-infinity = never seen).
  const std::vector<Seconds>& last_inputs() const { return last_input_; }

  /// Restore persisted idle timers.  Throws fadewich::Error when the
  /// snapshot's workstation count does not match this deployment.
  void restore(std::vector<Seconds> last_inputs);

 private:
  std::vector<Seconds> last_input_;  // -infinity when never seen
};

}  // namespace fadewich::core
