// Short ring-buffered history of all streams, so the online system can
// fetch V^(i)_{t1, t1+t_delta} when a variation window reaches t_delta
// (t1 is at most t_delta + merge-gap ticks in the past).
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "fadewich/common/error.hpp"
#include "fadewich/common/time.hpp"

namespace fadewich::core {

class StreamHistory {
 public:
  /// Retains the most recent `capacity` ticks of `stream_count` streams.
  StreamHistory(std::size_t stream_count, std::size_t capacity)
      : stream_count_(stream_count),
        capacity_(capacity),
        data_(stream_count * capacity, 0.0) {
    FADEWICH_EXPECTS(stream_count >= 1);
    FADEWICH_EXPECTS(capacity >= 1);
  }

  std::size_t stream_count() const { return stream_count_; }
  std::size_t capacity() const { return capacity_; }
  Tick ticks_stored() const { return next_tick_; }

  /// Oldest tick still retained.
  Tick oldest_tick() const {
    const Tick cap = static_cast<Tick>(capacity_);
    return next_tick_ > cap ? next_tick_ - cap : 0;
  }

  /// Restart the history at an arbitrary tick clock with zeroed contents
  /// (used when restoring a persisted system: the pre-restart samples are
  /// gone, but the tick indexing must stay aligned with the detector).
  void reset(Tick next_tick) {
    FADEWICH_EXPECTS(next_tick >= 0);
    std::fill(data_.begin(), data_.end(), 0.0);
    next_tick_ = next_tick;
  }

  /// Append one tick (one value per stream).
  void push(std::span<const double> row) {
    FADEWICH_EXPECTS(row.size() == stream_count_);
    const std::size_t slot =
        static_cast<std::size_t>(next_tick_ % static_cast<Tick>(capacity_));
    for (std::size_t s = 0; s < stream_count_; ++s) {
      data_[s * capacity_ + slot] = row[s];
    }
    ++next_tick_;
  }

  /// Samples of one stream over ticks [begin, end] inclusive.  Requires
  /// the range to be fully retained.
  std::vector<double> window(std::size_t stream, Tick begin,
                             Tick end) const {
    FADEWICH_EXPECTS(stream < stream_count_);
    FADEWICH_EXPECTS(begin >= oldest_tick());
    FADEWICH_EXPECTS(begin <= end);
    FADEWICH_EXPECTS(end < next_tick_);
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(end - begin + 1));
    for (Tick t = begin; t <= end; ++t) {
      const std::size_t slot =
          static_cast<std::size_t>(t % static_cast<Tick>(capacity_));
      out.push_back(data_[stream * capacity_ + slot]);
    }
    return out;
  }

  /// Windows for every stream over [begin, end].
  std::vector<std::vector<double>> windows(Tick begin, Tick end) const {
    std::vector<std::vector<double>> out;
    out.reserve(stream_count_);
    for (std::size_t s = 0; s < stream_count_; ++s) {
      out.push_back(window(s, begin, end));
    }
    return out;
  }

 private:
  std::size_t stream_count_;
  std::size_t capacity_;
  std::vector<double> data_;  // stream-major ring: data_[s * cap + slot]
  Tick next_tick_ = 0;
};

}  // namespace fadewich::core
