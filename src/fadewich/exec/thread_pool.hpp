// Parallel execution layer: a fixed-size work-stealing thread pool with
// data-parallel primitives.
//
// The evaluation pipeline is embarrassingly parallel at several levels —
// days of a simulated week, streams of a channel block, one-vs-one SVM
// problems, cross-validation folds — and every one of those units is
// seeded deterministically, so results never depend on the number of
// threads or the interleaving.  The pool provides:
//
//   * submit():       fire-and-forget task, pushed to the submitting
//                     worker's own deque (LIFO hot path) or round-robin
//                     across workers from outside the pool; idle workers
//                     steal FIFO from their siblings.
//   * parallel_for(): blocking index-range loop with chunked atomic
//                     work claiming; the caller participates, so nested
//                     parallel_for never deadlocks and a pool of size 1
//                     degenerates to a plain serial loop.
//   * parallel_map(): parallel_for that collects fn(items[i]) into a
//                     vector, preserving input order.
//
// The first exception thrown by any task of a parallel_for/parallel_map
// is captured and rethrown at the call site; remaining chunks are
// abandoned.
//
// Thread count resolution order: explicit constructor argument, then the
// FADEWICH_THREADS environment variable, then hardware concurrency.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fadewich::exec {

/// Worker count the global pool uses: FADEWICH_THREADS if set, otherwise
/// std::thread::hardware_concurrency().  A malformed or out-of-range
/// FADEWICH_THREADS value throws fadewich::Error (see common/env.hpp)
/// rather than silently falling back.
std::size_t default_thread_count();

/// Deterministic per-task seed: a SplitMix64 mix of a root seed and a task
/// index.  Tasks seeded this way draw decorrelated streams regardless of
/// which thread runs them or in what order, which is what keeps parallel
/// runs bit-identical to serial ones.
std::uint64_t task_seed(std::uint64_t root_seed, std::uint64_t task_index);

class ThreadPool {
 public:
  /// `threads` == 0 resolves via default_thread_count().  A pool of size 1
  /// still spawns one worker but parallel_for runs entirely on the caller.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task.  Uncaught task exceptions terminate; use
  /// parallel_for/parallel_map when exceptions must propagate.
  void submit(std::function<void()> task);

  /// Run fn(i) for every i in [begin, end), distributing chunks of
  /// `grain` indices across the workers and the calling thread.  Blocks
  /// until all indices ran; rethrows the first task exception.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

  /// Parallel transform preserving order: out[i] = fn(items[i]).
  template <typename T, typename F>
  auto parallel_map(const std::vector<T>& items, F&& fn)
      -> std::vector<decltype(fn(items[0], std::size_t{0}))> {
    using R = decltype(fn(items[0], std::size_t{0}));
    std::vector<R> out(items.size());
    parallel_for(0, items.size(),
                 [&](std::size_t i) { out[i] = fn(items[i], i); });
    return out;
  }

  /// Pop-and-run one queued task if any is available.  Used internally by
  /// waiting parallel_for callers; exposed for tests.
  bool try_run_pending_task();

  /// Process-wide shared pool, sized by default_thread_count() on first
  /// use.  Intended for library entry points whose callers did not pass a
  /// pool of their own.
  static ThreadPool& global();

 private:
  struct ForLoop;  // shared state of one parallel_for invocation

  void worker_loop(std::size_t self);
  bool pop_task(std::size_t self, std::function<void()>& task);
  static void run_loop_chunks(ForLoop& loop);
  static void leave_loop(ForLoop& loop);

  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<std::size_t> pending_{0};
};

}  // namespace fadewich::exec
