#include "fadewich/exec/thread_pool.hpp"

#include <chrono>
#include <string>

#include "fadewich/common/env.hpp"
#include "fadewich/common/error.hpp"
#include "fadewich/obs/obs.hpp"

namespace fadewich::exec {

namespace {

// Which pool (if any) the current thread is a worker of.  Lets submit()
// push to the local deque and keeps nested parallel_for cheap.
struct WorkerIdentity {
  ThreadPool* pool = nullptr;
  std::size_t index = 0;
};
thread_local WorkerIdentity t_worker;

// The ThreadPool constructor touches this struct, so the registry behind
// the handles is constructed before — and therefore destroyed after —
// any pool whose workers might still be flushing counters at exit.
struct ExecMetrics {
  obs::Counter submitted = obs::registry().counter(
      "fadewich_exec_tasks_submitted_total", "tasks enqueued via submit()");
  obs::Counter loops = obs::registry().counter(
      "fadewich_exec_parallel_for_total", "parallel_for invocations");
  obs::Gauge queue_depth = obs::registry().gauge(
      "fadewich_exec_queue_depth", "tasks queued and not yet started");
  obs::Histogram loop_latency = obs::registry().histogram(
      "fadewich_exec_parallel_for_seconds",
      "parallel_for wall time, caller's view");
  static ExecMetrics& get() {
    static ExecMetrics metrics;
    return metrics;
  }
};

}  // namespace

std::size_t default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  // A malformed FADEWICH_THREADS throws instead of silently running at
  // hardware concurrency: a fleet-sized run on the wrong pool size is an
  // expensive mistake to discover from a wall clock.  4096 caps obvious
  // typos (an extra digit) while leaving any plausible machine headroom.
  return common::env_count("FADEWICH_THREADS", hw > 0 ? hw : 1,
                           /*max_value=*/4096);
}

std::uint64_t task_seed(std::uint64_t root_seed, std::uint64_t task_index) {
  // SplitMix64 finaliser over root + golden-ratio stride, matching the
  // mixing Rng::split uses, but stateless: seed(i) never depends on how
  // many sibling tasks were seeded before it.
  std::uint64_t z = root_seed + 0x9E3779B97F4A7C15ull * (task_index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Shared state of one parallel_for call.  Participants (workers running
// helper tasks plus the calling thread) claim [next, next + grain) chunks
// until the range is exhausted; `active` counts claims still executing so
// the caller knows when the last straggler finished.
struct ThreadPool::ForLoop {
  std::size_t end = 0;
  std::size_t grain = 1;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> active{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  bool finished() const {
    return next.load() >= end && active.load() == 0;
  }
};

ThreadPool::ThreadPool(std::size_t threads) {
  ExecMetrics::get();  // pin registry lifetime past this pool's workers
  if (threads == 0) threads = default_thread_count();
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stopping_.store(true);
  }
  wake_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  FADEWICH_EXPECTS(task != nullptr);
  std::size_t q;
  if (t_worker.pool == this) {
    q = t_worker.index;  // local deque: LIFO hot path, cache-warm
  } else {
    q = next_queue_.fetch_add(1) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mutex);
    queues_[q]->tasks.push_back(std::move(task));
  }
  const std::size_t depth = pending_.fetch_add(1) + 1;
  auto& metrics = ExecMetrics::get();
  metrics.submitted.inc();
  metrics.queue_depth.set(static_cast<double>(depth));
  // Passing through wake_mutex_ before notifying closes the lost-wakeup
  // window: a worker that evaluated its sleep predicate before our
  // pending_ increment has, by the time we acquire the mutex, atomically
  // released it and blocked — so the notify below reaches it.
  { std::lock_guard<std::mutex> lock(wake_mutex_); }
  wake_cv_.notify_one();
}

bool ThreadPool::pop_task(std::size_t self, std::function<void()>& task) {
  // Own deque from the back (most recently pushed: LIFO keeps the working
  // set hot), then steal from siblings' fronts (FIFO: oldest, largest
  // remaining work first).
  {
    WorkerQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
    WorkerQueue& victim = *queues_[(self + offset) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

bool ThreadPool::try_run_pending_task() {
  const std::size_t self =
      t_worker.pool == this ? t_worker.index : next_queue_.load() %
                                                   queues_.size();
  std::function<void()> task;
  if (!pop_task(self, task)) return false;
  pending_.fetch_sub(1);
  task();
  return true;
}

void ThreadPool::worker_loop(std::size_t self) {
  t_worker = WorkerIdentity{this, self};
  for (;;) {
    std::function<void()> task;
    if (pop_task(self, task)) {
      pending_.fetch_sub(1);
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [this] {
      return stopping_.load() || pending_.load() > 0;
    });
    if (stopping_.load() && pending_.load() == 0) return;
  }
}

// Drop one participant; whoever decrements `active` to zero on an
// exhausted range notifies the waiting caller.  Every decrement must go
// through here — a silent decrement can consume the "last one out" state
// another participant observed, and then nobody notifies.
void ThreadPool::leave_loop(ForLoop& loop) {
  if (loop.active.fetch_sub(1) == 1 && loop.next.load() >= loop.end) {
    std::lock_guard<std::mutex> lock(loop.done_mutex);
    loop.done_cv.notify_all();
  }
}

void ThreadPool::run_loop_chunks(ForLoop& loop) {
  for (;;) {
    if (loop.next.load() >= loop.end || loop.failed.load()) return;
    loop.active.fetch_add(1);  // before claiming: no premature "finished"
    std::size_t i = loop.next.fetch_add(loop.grain);
    if (i >= loop.end) {
      leave_loop(loop);
      return;
    }
    const std::size_t hi = std::min(i + loop.grain, loop.end);
    try {
      for (; i < hi && !loop.failed.load(); ++i) (*loop.fn)(i);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(loop.error_mutex);
        if (!loop.error) loop.error = std::current_exception();
      }
      loop.failed.store(true);
      loop.next.store(loop.end);  // abandon unclaimed chunks
    }
    leave_loop(loop);
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (begin >= end) return;
  FADEWICH_EXPECTS(fn != nullptr);
  if (grain == 0) grain = 1;

  // Only reach for the clock when obs is live: the disabled path must
  // stay a branch on one relaxed load.
  const bool timed = obs::enabled();
  const auto started = timed ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point{};

  auto loop = std::make_shared<ForLoop>();
  loop->end = end;
  loop->grain = grain;
  loop->fn = &fn;
  loop->next.store(begin);

  // One helper per worker, capped by the number of chunks beyond the one
  // the caller will take itself.  Helpers hold the shared_ptr: a helper
  // that only runs after the loop completed sees an exhausted range and
  // returns immediately.  A 1-thread pool submits no helpers at all —
  // the caller runs every chunk itself, honouring the documented
  // degenerates-to-a-serial-loop contract (and making a 1-thread pool a
  // true single-threaded baseline, not caller + one worker).
  const std::size_t chunks = (end - begin + grain - 1) / grain;
  const std::size_t helpers =
      thread_count() <= 1
          ? 0
          : std::min(thread_count(), chunks > 0 ? chunks - 1 : 0);
  for (std::size_t h = 0; h < helpers; ++h) {
    submit([loop] { run_loop_chunks(*loop); });
  }

  run_loop_chunks(*loop);  // the caller is a full participant

  if (!loop->finished()) {
    // Stragglers remain.  Help drain unrelated queued work while waiting
    // (keeps nested parallel loops flowing), then block for the tail.
    while (!loop->finished() && try_run_pending_task()) {
    }
    std::unique_lock<std::mutex> lock(loop->done_mutex);
    loop->done_cv.wait(lock, [&] { return loop->finished(); });
  }

  if (timed) {
    auto& metrics = ExecMetrics::get();
    metrics.loops.inc();
    metrics.loop_latency.observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count());
  }

  if (loop->error) std::rethrow_exception(loop->error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace fadewich::exec
