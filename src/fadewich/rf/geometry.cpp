#include "fadewich/rf/geometry.hpp"

#include <algorithm>

namespace fadewich::rf {

double distance(const Point& a, const Point& b) { return (a - b).norm(); }

double point_segment_distance(const Point& p, const Segment& s) {
  const Point d = s.b - s.a;
  const double len2 = d.dot(d);
  if (len2 == 0.0) return distance(p, s.a);
  const double t = std::clamp((p - s.a).dot(d) / len2, 0.0, 1.0);
  return distance(p, s.a + d * t);
}

double excess_path_length(const Point& p, const Segment& s) {
  return distance(s.a, p) + distance(p, s.b) - s.length();
}

PrecomputedSegment::PrecomputedSegment(const Segment& s)
    : a(s.a), b(s.b), dir(s.b - s.a) {
  const double len2 = dir.dot(dir);
  length = std::sqrt(len2);
  inv_len2 = len2 > 0.0 ? 1.0 / len2 : 0.0;
}

double point_segment_distance(const Point& p, const PrecomputedSegment& s) {
  if (s.inv_len2 == 0.0) return distance(p, s.a);
  const double t = std::clamp((p - s.a).dot(s.dir) * s.inv_len2, 0.0, 1.0);
  return distance(p, s.a + s.dir * t);
}

double excess_path_length(const Point& p, const PrecomputedSegment& s) {
  return distance(s.a, p) + distance(p, s.b) - s.length;
}

Point lerp(const Point& a, const Point& b, double t) {
  return a + (b - a) * t;
}

}  // namespace fadewich::rf
