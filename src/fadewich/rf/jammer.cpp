#include "fadewich/rf/jammer.hpp"

#include <algorithm>
#include <cmath>

namespace fadewich::rf {

double jammer_noise_std_db(const Jammer& jammer, const Point& receiver,
                           const LogDistancePathLoss& path_loss,
                           double reference_rssi_dbm) {
  const double received_dbm =
      jammer.power_dbm -
      path_loss.loss_db(distance(jammer.position, receiver));
  // Interference-to-signal ratio in amplitude; 0 dB ISR corrupts the
  // measurement by several dB, deep-below-signal interference vanishes.
  const double isr_db = received_dbm - reference_rssi_dbm;
  const double amplitude_ratio = std::pow(10.0, isr_db / 20.0);
  constexpr double kStdAtUnitIsr = 4.0;  // dB of noise at ISR = 0 dB
  return std::min(kStdAtUnitIsr * amplitude_ratio, 12.0);
}

}  // namespace fadewich::rf
