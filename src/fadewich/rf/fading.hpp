// Temporally correlated multipath fading as a first-order autoregressive
// Gaussian process:
//
//   x_t = rho * x_{t-1} + sqrt(1 - rho^2) * sigma * eps_t
//
// The stationary distribution is N(0, sigma^2); rho controls how slowly
// the multipath state of a static environment drifts between samples.
// This reproduces the "busy wireless channel" texture the paper stresses:
// even with nobody moving, per-link RSSI wanders by ~1 dB.
#pragma once

#include "fadewich/common/rng.hpp"

namespace fadewich::rf {

struct FadingConfig {
  double sigma_db = 0.9;  // stationary std of the fading process
  double rho = 0.9;       // per-sample correlation, in [0, 1)
};

class Ar1Fading {
 public:
  Ar1Fading(FadingConfig config, Rng rng);

  /// Advance one sample and return the new fading value (dB).
  double step();

  /// Current value without advancing.
  double value() const { return state_; }

  const FadingConfig& config() const { return config_; }

 private:
  FadingConfig config_;
  Rng rng_;
  double state_;
  double innovation_scale_;
};

}  // namespace fadewich::rf
