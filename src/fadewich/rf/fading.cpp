#include "fadewich/rf/fading.hpp"

#include <cmath>

#include "fadewich/common/error.hpp"

namespace fadewich::rf {

Ar1Fading::Ar1Fading(FadingConfig config, Rng rng)
    : config_(config), rng_(rng), state_(0.0) {
  FADEWICH_EXPECTS(config_.sigma_db >= 0.0);
  FADEWICH_EXPECTS(config_.rho >= 0.0 && config_.rho < 1.0);
  innovation_scale_ =
      std::sqrt(1.0 - config_.rho * config_.rho) * config_.sigma_db;
  // Start from the stationary distribution so streams need no warm-up.
  state_ = rng_.normal(0.0, config_.sigma_db);
}

double Ar1Fading::step() {
  state_ = config_.rho * state_ + rng_.normal(0.0, innovation_scale_);
  return state_;
}

}  // namespace fadewich::rf
