// Parametric office generation — the paper's future work ("investigate
// the performance of the system in different setups: other offices, with
// different dimensions and users").
//
// Produces floor plans of arbitrary dimensions with any number of
// workstations and wall-mounted sensors, using the same conventions as
// the paper office: sensors spread along the wall perimeter, desks along
// the walls facing inward, a single door, and a central corridor
// waypoint.
#pragma once

#include <cstddef>

#include "fadewich/rf/floorplan.hpp"

namespace fadewich::rf {

struct OfficeSpec {
  double width = 6.0;    // metres, >= 3
  double height = 3.0;   // metres, >= 2.5
  std::size_t workstations = 3;  // >= 1
  std::size_t sensors = 9;       // >= 2
};

/// Deterministically build a floor plan for the spec:
/// * the door sits on the bottom wall near the right corner;
/// * sensors are placed at equal arc length along the wall perimeter,
///   starting opposite the door so small counts still surround the room;
/// * workstations line the top wall (and then the left wall when the top
///   is full), seats ~0.5 m inside, stand points ~0.6 m further in.
/// Throws on specs that do not fit (too many desks for the walls).
FloorPlan build_office(const OfficeSpec& spec);

}  // namespace fadewich::rf
