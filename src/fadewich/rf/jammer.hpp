// Wireless physical attacks (Section V-C).
//
// The paper argues an adversary cannot jam RSSI in a way that *hides*
// movement: to do so the jammer would have to hold every stream's
// measured value steady while a body perturbs the true signal, which
// requires knowing each link's instantaneous channel.  What a real
// jammer can do is inject additional interference power, which raises
// the noise floor and the measured variance at nearby receivers — an
// effect MD detects as an anomaly rather than being blinded by.
//
// The model: an interferer at a fixed position radiating `power_dbm`.
// Each receiver measures extra noise whose standard deviation follows
// the received interference power through the same log-distance path
// loss as the legitimate links (stronger when the jammer is close).
#pragma once

#include <vector>

#include "fadewich/rf/geometry.hpp"
#include "fadewich/rf/pathloss.hpp"

namespace fadewich::rf {

struct Jammer {
  Point position;
  double power_dbm = 10.0;  // strong consumer-grade interferer
};

/// Extra RSSI noise standard deviation (dB) a jammer induces at a
/// receiver.  Interference power arriving within ~20 dB of the legit
/// signal corrupts the measurement roughly in proportion to the
/// amplitude ratio; the mapping below converts the received interference
/// level into a dB-domain noise std, clamped to a sane ceiling.
double jammer_noise_std_db(const Jammer& jammer, const Point& receiver,
                           const LogDistancePathLoss& path_loss,
                           double reference_rssi_dbm = -55.0);

}  // namespace fadewich::rf
