#include "fadewich/rf/channel.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "fadewich/common/error.hpp"
#include "fadewich/common/scratch_arena.hpp"
#include "fadewich/exec/thread_pool.hpp"

namespace fadewich::rf {

namespace {
constexpr double kTwoPi = 2.0 * 3.14159265358979323846;

// One body's kernel parameters for a tick: position plus each spatial
// kernel's amplitude with the speed factors folded in, computed exactly
// as BodyShadowingModel's per-link helpers would (same multiplication
// association), so the wide pass reproduces the per-link model.
simd::ShadowParams make_shadow_params(const BodyModelConfig& config,
                                      const BodyState& body) {
  simd::ShadowParams p;
  p.px = body.position.x;
  p.py = body.position.y;
  p.max_attenuation_db = config.max_attenuation_db;
  p.shadow_decay_m = config.shadow_decay_m;
  p.motion_decay_m = config.motion_decay_m;
  p.ambient_decay_m = config.ambient_decay_m;
  if (body.speed > 0.0) {
    p.motion_coeff =
        config.motion_noise_db *
        std::min(body.speed / config.reference_speed, 1.5);
    p.ambient_coeff = config.ambient_motion_db * std::min(body.speed, 2.0);
  }
  return p;
}

}  // namespace

ChannelMatrix::ChannelMatrix(std::vector<Point> sensors,
                             ChannelConfig config, std::uint64_t seed)
    : sensors_(std::move(sensors)),
      config_(config),
      body_model_(config.body),
      path_loss_(config.path_loss),
      noise_rng_(seed) {  // reseeded from a split stream below
  FADEWICH_EXPECTS(sensors_.size() >= 2);
  Rng root(seed);
  Rng shadow_rng = root.split(1);
  Rng fading_seed_rng = root.split(2);
  noise_rng_ = root.split(3);
  Rng link_noise_seed_rng = root.split(4);

  const std::size_t m = sensors_.size();
  links_.reserve(m * (m - 1));

  // Undirected link shadowing is shared by both directions; a small
  // per-direction offset models RX chain differences.  One flat
  // upper-triangular array (pair (i, j), i < j, at index
  // i*m - i*(i+1)/2 + (j-i-1)) instead of an m x m nested vector; the
  // draws happen in the same (i, j) order as before, so the RNG stream
  // and every static RSSI are unchanged.
  std::vector<double> undirected_shadow(m * (m - 1) / 2, 0.0);
  const auto pair_index = [m](std::size_t i, std::size_t j) {
    // Requires i < j.
    return i * m - i * (i + 1) / 2 + (j - i - 1);
  };
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      undirected_shadow[pair_index(i, j)] =
          shadow_rng.normal(0.0, config_.link_shadow_sigma_db);
    }
  }

  for (std::size_t tx = 0; tx < m; ++tx) {
    for (std::size_t rx = 0; rx < m; ++rx) {
      if (tx == rx) continue;
      Segment seg{sensors_[tx], sensors_[rx]};
      const PrecomputedSegment geom(seg);
      const double offset =
          shadow_rng.normal(0.0, config_.direction_offset_sigma_db);
      const double shadow =
          undirected_shadow[pair_index(std::min(tx, rx), std::max(tx, rx))];
      const double static_rssi = config_.tx_power_dbm -
                                 path_loss_.loss_db(geom.length) -
                                 shadow - offset;
      links_.push_back(LinkState{
          seg, geom, static_rssi, shadow_rng.uniform(0.0, kTwoPi),
          Ar1Fading(config_.fading, fading_seed_rng.split(links_.size())),
          link_noise_seed_rng.split(links_.size())});
    }
  }
  interference_affected_.assign(links_.size(), 0);

  const std::size_t streams = links_.size();
  geo_ax_.resize(streams);
  geo_ay_.resize(streams);
  geo_bx_.resize(streams);
  geo_by_.resize(streams);
  geo_dirx_.resize(streams);
  geo_diry_.resize(streams);
  geo_len_.resize(streams);
  geo_inv_len2_.resize(streams);
  for (std::size_t s = 0; s < streams; ++s) {
    const PrecomputedSegment& g = links_[s].geom;
    geo_ax_[s] = g.a.x;
    geo_ay_[s] = g.a.y;
    geo_bx_[s] = g.b.x;
    geo_by_[s] = g.b.y;
    geo_dirx_[s] = g.dir.x;
    geo_diry_[s] = g.dir.y;
    geo_len_[s] = g.length;
    geo_inv_len2_[s] = g.inv_len2;
  }

  FADEWICH_EXPECTS(config_.tick_hz > 0.0);
  if (config_.interference_mean_gap_s > 0.0) {
    interference_gap_ticks_ = noise_rng_.exponential(
        1.0 / (config_.interference_mean_gap_s * config_.tick_hz));
  }
}

std::size_t ChannelMatrix::stream_index(std::size_t tx, std::size_t rx) const {
  FADEWICH_EXPECTS(tx < sensors_.size());
  FADEWICH_EXPECTS(rx < sensors_.size());
  FADEWICH_EXPECTS(tx != rx);
  // Row tx holds (m - 1) streams; rx skips the diagonal.
  const std::size_t m = sensors_.size();
  return tx * (m - 1) + (rx < tx ? rx : rx - 1);
}

std::pair<std::size_t, std::size_t> ChannelMatrix::stream_pair(
    std::size_t stream) const {
  FADEWICH_EXPECTS(stream < links_.size());
  const std::size_t m = sensors_.size();
  const std::size_t tx = stream / (m - 1);
  std::size_t rx = stream % (m - 1);
  if (rx >= tx) ++rx;
  return {tx, rx};
}

const Segment& ChannelMatrix::link(std::size_t stream) const {
  FADEWICH_EXPECTS(stream < links_.size());
  return links_[stream].segment;
}

void ChannelMatrix::advance_interference() {
  if (config_.interference_mean_gap_s <= 0.0) return;
  if (interference_remaining_ticks_ > 0.0) {
    interference_remaining_ticks_ -= 1.0;
    return;
  }
  if (interference_gap_ticks_ > 0.0) {
    interference_gap_ticks_ -= 1.0;
    return;
  }
  // Start a new burst: pick its strength, duration and the affected links.
  interference_remaining_ticks_ =
      noise_rng_.exponential(1.0 / (config_.interference_mean_duration_s *
                                    config_.tick_hz));
  interference_std_db_ =
      noise_rng_.uniform(1.0, config_.interference_max_std_db);
  // The mask buffer is sized once at construction; bursts overwrite it in
  // place, so the steady-state tick loop never allocates.
  for (std::size_t s = 0; s < links_.size(); ++s) {
    interference_affected_[s] =
        noise_rng_.bernoulli(config_.interference_link_fraction) ? 1 : 0;
  }
  interference_gap_ticks_ = noise_rng_.exponential(
      1.0 / (config_.interference_mean_gap_s * config_.tick_hz));
  ++interference_burst_seq_;
}

void ChannelMatrix::sample(std::span<const BodyState> bodies,
                           std::span<const Jammer> jammers,
                           std::span<double> out) {
  FADEWICH_EXPECTS(out.size() == links_.size());
  if (jammers.empty()) {
    sample(bodies, out);
    return;
  }
  // Receiver-side interference: one noise level per RX sensor, staged in
  // the calling thread's scratch arena (this path runs inside the tick
  // loop when jammers are active, and must not allocate per call).
  auto& arena = common::ScratchArena::local();
  const auto frame = arena.frame();
  const std::span<double> jam_var = arena.get<double>(sensors_.size());
  std::fill(jam_var.begin(), jam_var.end(), 0.0);
  for (std::size_t rx = 0; rx < sensors_.size(); ++rx) {
    for (const Jammer& jammer : jammers) {
      const double std_db =
          jammer_noise_std_db(jammer, sensors_[rx], path_loss_);
      jam_var[rx] += std_db * std_db;
    }
  }
  sample(bodies, out);
  for (std::size_t s = 0; s < links_.size(); ++s) {
    const std::size_t rx = stream_pair(s).second;
    if (jam_var[rx] <= 0.0) continue;
    double rssi =
        out[s] + links_[s].noise_rng.normal(0.0, std::sqrt(jam_var[rx]));
    rssi = std::clamp(rssi, config_.rssi_floor_dbm,
                      config_.rssi_ceiling_dbm);
    if (config_.quantize) rssi = std::round(rssi);
    out[s] = rssi;
  }
}

double ChannelMatrix::stream_base(LinkState& ls, double drift_arg) const {
  double fading = ls.fading.step();
  if (config_.noise_drift_fraction > 0.0) {
    // Common phase across links: co-channel load raises the noise of
    // the whole band together, which is exactly what shifts MD's
    // sum-of-std statistic (per-link random phases would cancel in
    // the sum).
    fading *= 1.0 + config_.noise_drift_fraction * std::sin(drift_arg);
  }
  double rssi = ls.static_rssi_dbm + fading;
  if (config_.baseline_drift_amplitude_db > 0.0) {
    rssi += config_.baseline_drift_amplitude_db *
            std::sin(drift_arg + ls.drift_phase);
  }
  return rssi;
}

double ChannelMatrix::finish_stream(LinkState& ls, double rssi,
                                    double noise_var,
                                    double interference_std_db) const {
  noise_var += interference_std_db * interference_std_db;
  if (noise_var > 0.0) {
    rssi += ls.noise_rng.normal(0.0, std::sqrt(noise_var));
  }
  rssi = std::clamp(rssi, config_.rssi_floor_dbm, config_.rssi_ceiling_dbm);
  if (config_.quantize) rssi = std::round(rssi);
  return rssi;
}

simd::ShadowGeomView ChannelMatrix::geom_view(std::size_t s) const {
  return {geo_ax_.data() + s,   geo_ay_.data() + s,
          geo_bx_.data() + s,   geo_by_.data() + s,
          geo_dirx_.data() + s, geo_diry_.data() + s,
          geo_len_.data() + s,  geo_inv_len2_.data() + s};
}

void ChannelMatrix::sample(std::span<const BodyState> bodies,
                           std::span<double> out) {
  FADEWICH_EXPECTS(out.size() == links_.size());
  advance_interference();
  const bool interfering = interference_remaining_ticks_ > 0.0;
  const double now_s = static_cast<double>(tick_++) / config_.tick_hz;
  const bool drifting = config_.baseline_drift_amplitude_db > 0.0 ||
                        config_.noise_drift_fraction > 0.0;
  const double drift_arg =
      drifting ? kTwoPi * now_s / config_.baseline_drift_period_s : 0.0;
  const std::size_t streams = links_.size();
  const simd::KernelTable& kt = simd::active_kernels();

  // Wide tick: per-link prologue (fading draws, in stream order), one
  // all-links shadowing kernel pass per body, per-link epilogue (noise
  // draw, clamp, quantise).  Per-link RNG sequences are unchanged — the
  // prologue consumes each fading generator and the epilogue each noise
  // generator exactly as the per-stream path does.
  auto& arena = common::ScratchArena::local();
  const auto scratch_frame = arena.frame();
  const std::span<double> rssi = arena.get<double>(streams);
  const std::span<double> noise_var = arena.get<double>(streams);
  for (std::size_t s = 0; s < streams; ++s) {
    rssi[s] = stream_base(links_[s], drift_arg);
    noise_var[s] = 0.0;
  }
  const simd::ShadowGeomView geom = geom_view(0);
  for (const BodyState& body : bodies) {
    const simd::ShadowParams p = make_shadow_params(config_.body, body);
    kt.shadow_body_pass(geom, streams, p, rssi.data(), noise_var.data());
  }
  for (std::size_t s = 0; s < streams; ++s) {
    const double interference_std =
        interfering && interference_affected_[s] ? interference_std_db_
                                                 : 0.0;
    out[s] = finish_stream(links_[s], rssi[s], noise_var[s],
                           interference_std);
  }
}

void ChannelMatrix::sample_block(
    std::span<const std::vector<BodyState>> bodies_per_tick,
    std::span<double> out, exec::ThreadPool* pool) {
  const std::size_t ticks = bodies_per_tick.size();
  const std::size_t streams = links_.size();
  FADEWICH_EXPECTS(out.size() == ticks * streams);
  if (ticks == 0) return;

  // Serial prologue: advance the global per-tick state (interference
  // schedule, drift clock) exactly as `ticks` successive sample() calls
  // would, recording what each tick saw.  The staging buffers are
  // retained members — pool workers read them concurrently, so they must
  // not live in the caller's thread-local arena — and their capacity
  // survives across calls: after the first block of a given size, the
  // prologue allocates nothing.
  const bool drifting = config_.baseline_drift_amplitude_db > 0.0 ||
                        config_.noise_drift_fraction > 0.0;
  blk_drift_args_.assign(ticks, 0.0);
  blk_tick_std_.assign(ticks, 0.0);
  blk_burst_of_.assign(ticks, 0);
  std::size_t snapshots = 0;        // bursts seen in this block
  std::uint64_t snapshot_seq = 0;   // burst seq of the latest snapshot
  for (std::size_t t = 0; t < ticks; ++t) {
    advance_interference();
    const double now_s = static_cast<double>(tick_++) / config_.tick_hz;
    if (drifting) {
      blk_drift_args_[t] = kTwoPi * now_s / config_.baseline_drift_period_s;
    }
    if (interference_remaining_ticks_ > 0.0) {
      blk_tick_std_[t] = interference_std_db_;
      if (snapshots == 0 || snapshot_seq != interference_burst_seq_) {
        // Flat [burst][stream] snapshot of the affected-link mask.
        blk_affected_.resize((snapshots + 1) * streams);
        std::copy(interference_affected_.begin(),
                  interference_affected_.end(),
                  blk_affected_.begin() +
                      static_cast<std::ptrdiff_t>(snapshots * streams));
        ++snapshots;
        snapshot_seq = interference_burst_seq_;
      }
      blk_burst_of_[t] = static_cast<std::uint32_t>(snapshots - 1);
    }
  }

  // Per-stream time series are mutually independent: each draws only from
  // its own link state.  A worker owns a contiguous range of streams and
  // runs the same wide tick structure as sample() over that range —
  // per-link prologue, one shadowing-kernel pass per body across the
  // whole range, per-link epilogue — so every stream runs the identical
  // per-lane arithmetic regardless of which path or thread computed it.
  // Output layout is [tick][stream].
  const auto compute_stream_range = [&](std::size_t s0, std::size_t s1) {
    const std::size_t n = s1 - s0;
    const simd::KernelTable& kt = simd::active_kernels();
    const simd::ShadowGeomView geom = geom_view(s0);
    auto& arena = common::ScratchArena::local();
    const auto frame = arena.frame();
    const std::span<double> rssi = arena.get<double>(n);
    const std::span<double> noise_var = arena.get<double>(n);
    for (std::size_t t = 0; t < ticks; ++t) {
      const double drift_arg = blk_drift_args_[t];
      for (std::size_t s = s0; s < s1; ++s) {
        rssi[s - s0] = stream_base(links_[s], drift_arg);
        noise_var[s - s0] = 0.0;
      }
      for (const BodyState& body : bodies_per_tick[t]) {
        const simd::ShadowParams p = make_shadow_params(config_.body, body);
        kt.shadow_body_pass(geom, n, p, rssi.data(), noise_var.data());
      }
      const double tick_std = blk_tick_std_[t];
      double* out_row = out.data() + t * streams;
      for (std::size_t s = s0; s < s1; ++s) {
        const double interference_std =
            tick_std > 0.0 &&
                    blk_affected_[blk_burst_of_[t] * streams + s] != 0
                ? tick_std
                : 0.0;
        out_row[s] = finish_stream(links_[s], rssi[s - s0],
                                   noise_var[s - s0], interference_std);
      }
    }
  };
  if (pool != nullptr && pool->thread_count() > 1) {
    // Chunks wide enough to keep the kernel in its vector main loop
    // (a one-stream chunk would run the scalar tail every tick).
    const std::size_t chunks =
        std::max<std::size_t>(1, std::min(streams / 8,
                                          pool->thread_count() * 4));
    const std::size_t per = (streams + chunks - 1) / chunks;
    pool->parallel_for(0, chunks, [&](std::size_t c) {
      const std::size_t s0 = c * per;
      const std::size_t s1 = std::min(s0 + per, streams);
      if (s0 < s1) compute_stream_range(s0, s1);
    });
  } else {
    compute_stream_range(0, streams);
  }
}

std::vector<double> ChannelMatrix::sample(std::span<const BodyState> bodies) {
  std::vector<double> out(links_.size());
  sample(bodies, out);
  return out;
}

}  // namespace fadewich::rf
