#include "fadewich/rf/channel.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "fadewich/common/error.hpp"
#include "fadewich/common/scratch_arena.hpp"
#include "fadewich/exec/thread_pool.hpp"

namespace fadewich::rf {

namespace {
constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
}  // namespace

ChannelMatrix::ChannelMatrix(std::vector<Point> sensors,
                             ChannelConfig config, std::uint64_t seed)
    : sensors_(std::move(sensors)),
      config_(config),
      body_model_(config.body),
      path_loss_(config.path_loss),
      noise_rng_(seed) {  // reseeded from a split stream below
  FADEWICH_EXPECTS(sensors_.size() >= 2);
  Rng root(seed);
  Rng shadow_rng = root.split(1);
  Rng fading_seed_rng = root.split(2);
  noise_rng_ = root.split(3);
  Rng link_noise_seed_rng = root.split(4);

  const std::size_t m = sensors_.size();
  links_.reserve(m * (m - 1));

  // Undirected link shadowing is shared by both directions; a small
  // per-direction offset models RX chain differences.  One flat
  // upper-triangular array (pair (i, j), i < j, at index
  // i*m - i*(i+1)/2 + (j-i-1)) instead of an m x m nested vector; the
  // draws happen in the same (i, j) order as before, so the RNG stream
  // and every static RSSI are unchanged.
  std::vector<double> undirected_shadow(m * (m - 1) / 2, 0.0);
  const auto pair_index = [m](std::size_t i, std::size_t j) {
    // Requires i < j.
    return i * m - i * (i + 1) / 2 + (j - i - 1);
  };
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      undirected_shadow[pair_index(i, j)] =
          shadow_rng.normal(0.0, config_.link_shadow_sigma_db);
    }
  }

  for (std::size_t tx = 0; tx < m; ++tx) {
    for (std::size_t rx = 0; rx < m; ++rx) {
      if (tx == rx) continue;
      Segment seg{sensors_[tx], sensors_[rx]};
      const PrecomputedSegment geom(seg);
      const double offset =
          shadow_rng.normal(0.0, config_.direction_offset_sigma_db);
      const double shadow =
          undirected_shadow[pair_index(std::min(tx, rx), std::max(tx, rx))];
      const double static_rssi = config_.tx_power_dbm -
                                 path_loss_.loss_db(geom.length) -
                                 shadow - offset;
      links_.push_back(LinkState{
          seg, geom, static_rssi, shadow_rng.uniform(0.0, kTwoPi),
          Ar1Fading(config_.fading, fading_seed_rng.split(links_.size())),
          link_noise_seed_rng.split(links_.size())});
    }
  }
  interference_affected_.assign(links_.size(), 0);

  FADEWICH_EXPECTS(config_.tick_hz > 0.0);
  if (config_.interference_mean_gap_s > 0.0) {
    interference_gap_ticks_ = noise_rng_.exponential(
        1.0 / (config_.interference_mean_gap_s * config_.tick_hz));
  }
}

std::size_t ChannelMatrix::stream_index(std::size_t tx, std::size_t rx) const {
  FADEWICH_EXPECTS(tx < sensors_.size());
  FADEWICH_EXPECTS(rx < sensors_.size());
  FADEWICH_EXPECTS(tx != rx);
  // Row tx holds (m - 1) streams; rx skips the diagonal.
  const std::size_t m = sensors_.size();
  return tx * (m - 1) + (rx < tx ? rx : rx - 1);
}

std::pair<std::size_t, std::size_t> ChannelMatrix::stream_pair(
    std::size_t stream) const {
  FADEWICH_EXPECTS(stream < links_.size());
  const std::size_t m = sensors_.size();
  const std::size_t tx = stream / (m - 1);
  std::size_t rx = stream % (m - 1);
  if (rx >= tx) ++rx;
  return {tx, rx};
}

const Segment& ChannelMatrix::link(std::size_t stream) const {
  FADEWICH_EXPECTS(stream < links_.size());
  return links_[stream].segment;
}

void ChannelMatrix::advance_interference() {
  if (config_.interference_mean_gap_s <= 0.0) return;
  if (interference_remaining_ticks_ > 0.0) {
    interference_remaining_ticks_ -= 1.0;
    return;
  }
  if (interference_gap_ticks_ > 0.0) {
    interference_gap_ticks_ -= 1.0;
    return;
  }
  // Start a new burst: pick its strength, duration and the affected links.
  interference_remaining_ticks_ =
      noise_rng_.exponential(1.0 / (config_.interference_mean_duration_s *
                                    config_.tick_hz));
  interference_std_db_ =
      noise_rng_.uniform(1.0, config_.interference_max_std_db);
  // The mask buffer is sized once at construction; bursts overwrite it in
  // place, so the steady-state tick loop never allocates.
  for (std::size_t s = 0; s < links_.size(); ++s) {
    interference_affected_[s] =
        noise_rng_.bernoulli(config_.interference_link_fraction) ? 1 : 0;
  }
  interference_gap_ticks_ = noise_rng_.exponential(
      1.0 / (config_.interference_mean_gap_s * config_.tick_hz));
  ++interference_burst_seq_;
}

void ChannelMatrix::sample(std::span<const BodyState> bodies,
                           std::span<const Jammer> jammers,
                           std::span<double> out) {
  FADEWICH_EXPECTS(out.size() == links_.size());
  if (jammers.empty()) {
    sample(bodies, out);
    return;
  }
  // Receiver-side interference: one noise level per RX sensor, staged in
  // the calling thread's scratch arena (this path runs inside the tick
  // loop when jammers are active, and must not allocate per call).
  auto& arena = common::ScratchArena::local();
  const auto frame = arena.frame();
  const std::span<double> jam_var = arena.get<double>(sensors_.size());
  std::fill(jam_var.begin(), jam_var.end(), 0.0);
  for (std::size_t rx = 0; rx < sensors_.size(); ++rx) {
    for (const Jammer& jammer : jammers) {
      const double std_db =
          jammer_noise_std_db(jammer, sensors_[rx], path_loss_);
      jam_var[rx] += std_db * std_db;
    }
  }
  sample(bodies, out);
  for (std::size_t s = 0; s < links_.size(); ++s) {
    const std::size_t rx = stream_pair(s).second;
    if (jam_var[rx] <= 0.0) continue;
    double rssi =
        out[s] + links_[s].noise_rng.normal(0.0, std::sqrt(jam_var[rx]));
    rssi = std::clamp(rssi, config_.rssi_floor_dbm,
                      config_.rssi_ceiling_dbm);
    if (config_.quantize) rssi = std::round(rssi);
    out[s] = rssi;
  }
}

// One stream, one tick.  Every random draw comes from the link's own
// generators (fading + noise_rng), so the per-stream value sequence is
// invariant to which thread computes it and to how other streams advance.
double ChannelMatrix::sample_stream_tick(
    LinkState& ls, std::span<const BodyState> bodies, double drift_arg,
    double interference_std_db) const {
  double fading = ls.fading.step();
  if (config_.noise_drift_fraction > 0.0) {
    // Common phase across links: co-channel load raises the noise of
    // the whole band together, which is exactly what shifts MD's
    // sum-of-std statistic (per-link random phases would cancel in
    // the sum).
    fading *= 1.0 + config_.noise_drift_fraction * std::sin(drift_arg);
  }
  double rssi = ls.static_rssi_dbm + fading;
  if (config_.baseline_drift_amplitude_db > 0.0) {
    rssi += config_.baseline_drift_amplitude_db *
            std::sin(drift_arg + ls.drift_phase);
  }

  double noise_var = 0.0;
  for (const BodyState& body : bodies) {
    rssi -= body_model_.attenuation_db(body, ls.geom);
    const double motion = body_model_.motion_noise_std_db(body, ls.geom);
    const double ambient = body_model_.ambient_noise_std_db(body, ls.geom);
    noise_var += motion * motion + ambient * ambient;
  }
  noise_var += interference_std_db * interference_std_db;
  if (noise_var > 0.0) {
    rssi += ls.noise_rng.normal(0.0, std::sqrt(noise_var));
  }

  rssi = std::clamp(rssi, config_.rssi_floor_dbm, config_.rssi_ceiling_dbm);
  if (config_.quantize) rssi = std::round(rssi);
  return rssi;
}

void ChannelMatrix::sample(std::span<const BodyState> bodies,
                           std::span<double> out) {
  FADEWICH_EXPECTS(out.size() == links_.size());
  advance_interference();
  const bool interfering = interference_remaining_ticks_ > 0.0;
  const double now_s = static_cast<double>(tick_++) / config_.tick_hz;
  const bool drifting = config_.baseline_drift_amplitude_db > 0.0 ||
                        config_.noise_drift_fraction > 0.0;
  const double drift_arg =
      drifting ? kTwoPi * now_s / config_.baseline_drift_period_s : 0.0;
  for (std::size_t s = 0; s < links_.size(); ++s) {
    const double interference_std =
        interfering && interference_affected_[s] ? interference_std_db_
                                                 : 0.0;
    out[s] = sample_stream_tick(links_[s], bodies, drift_arg,
                                interference_std);
  }
}

void ChannelMatrix::sample_block(
    std::span<const std::vector<BodyState>> bodies_per_tick,
    std::span<double> out, exec::ThreadPool* pool) {
  const std::size_t ticks = bodies_per_tick.size();
  const std::size_t streams = links_.size();
  FADEWICH_EXPECTS(out.size() == ticks * streams);
  if (ticks == 0) return;

  // Serial prologue: advance the global per-tick state (interference
  // schedule, drift clock) exactly as `ticks` successive sample() calls
  // would, recording what each tick saw.  The staging buffers are
  // retained members — pool workers read them concurrently, so they must
  // not live in the caller's thread-local arena — and their capacity
  // survives across calls: after the first block of a given size, the
  // prologue allocates nothing.
  const bool drifting = config_.baseline_drift_amplitude_db > 0.0 ||
                        config_.noise_drift_fraction > 0.0;
  blk_drift_args_.assign(ticks, 0.0);
  blk_tick_std_.assign(ticks, 0.0);
  blk_burst_of_.assign(ticks, 0);
  std::size_t snapshots = 0;        // bursts seen in this block
  std::uint64_t snapshot_seq = 0;   // burst seq of the latest snapshot
  for (std::size_t t = 0; t < ticks; ++t) {
    advance_interference();
    const double now_s = static_cast<double>(tick_++) / config_.tick_hz;
    if (drifting) {
      blk_drift_args_[t] = kTwoPi * now_s / config_.baseline_drift_period_s;
    }
    if (interference_remaining_ticks_ > 0.0) {
      blk_tick_std_[t] = interference_std_db_;
      if (snapshots == 0 || snapshot_seq != interference_burst_seq_) {
        // Flat [burst][stream] snapshot of the affected-link mask.
        blk_affected_.resize((snapshots + 1) * streams);
        std::copy(interference_affected_.begin(),
                  interference_affected_.end(),
                  blk_affected_.begin() +
                      static_cast<std::ptrdiff_t>(snapshots * streams));
        ++snapshots;
        snapshot_seq = interference_burst_seq_;
      }
      blk_burst_of_[t] = static_cast<std::uint32_t>(snapshots - 1);
    }
  }

  // Per-stream time series are mutually independent: each draws only from
  // its own link state.  Output layout is [tick][stream].
  const auto compute_stream = [&](std::size_t s) {
    LinkState& ls = links_[s];
    for (std::size_t t = 0; t < ticks; ++t) {
      const double interference_std =
          blk_tick_std_[t] > 0.0 &&
                  blk_affected_[blk_burst_of_[t] * streams + s] != 0
              ? blk_tick_std_[t]
              : 0.0;
      out[t * streams + s] = sample_stream_tick(
          ls, bodies_per_tick[t], blk_drift_args_[t], interference_std);
    }
  };
  if (pool != nullptr && pool->thread_count() > 1) {
    pool->parallel_for(0, streams, compute_stream, /*grain=*/4);
  } else {
    for (std::size_t s = 0; s < streams; ++s) compute_stream(s);
  }
}

std::vector<double> ChannelMatrix::sample(std::span<const BodyState> bodies) {
  std::vector<double> out(links_.size());
  sample(bodies, out);
  return out;
}

}  // namespace fadewich::rf
