// Effect of human bodies on a TX-RX link.
//
// Two coupled effects drive FADEWICH's signal (Section I and [19]):
//
// 1. *Shadowing*: a body near the line-of-sight attenuates the link.  We
//    use the canonical radio-tomography weight — attenuation decays
//    exponentially in the excess path length  d(tx,p) + d(p,rx) - d(tx,rx),
//    which is large when p is far from the LoS ellipse and zero on the
//    direct path.
//
// 2. *Motion-induced fading*: a body moving near a link perturbs the
//    multipath components, inflating the short-term variance of RSSI even
//    when it never fully blocks the LoS (the fade-level effect of Patwari
//    & Wilson's skew-Laplace model).  We model the extra noise std as the
//    same spatial kernel scaled by the body's speed, plus a small
//    room-wide term: in a 6 x 3 m office every wall reflection passes
//    near everything.
#pragma once

#include "fadewich/common/rng.hpp"
#include "fadewich/rf/geometry.hpp"

namespace fadewich::rf {

struct BodyModelConfig {
  double max_attenuation_db = 9.0;  // LoS fully blocked by one body
  double shadow_decay_m = 0.18;     // e-folding of excess path length
  double motion_noise_db = 3.0;     // extra noise std at full walk on LoS
  double motion_decay_m = 0.55;     // spatial reach of motion perturbation
  double ambient_motion_db = 0.64;  // scattered-path noise std per (m/s)
  double ambient_decay_m = 4.0;     // e-folding distance of that noise
  double reference_speed = 1.4;     // normal walking speed (m/s)
};

struct BodyState {
  Point position;
  double speed = 0.0;  // m/s, 0 when perfectly still
};

class BodyShadowingModel {
 public:
  explicit BodyShadowingModel(BodyModelConfig config = {});

  /// Mean attenuation (dB, >= 0) a single body adds to the link.
  double attenuation_db(const BodyState& body, const Segment& link) const;
  double attenuation_db(const BodyState& body,
                        const PrecomputedSegment& link) const;

  /// Extra RSSI noise standard deviation (dB) caused by a single moving
  /// body near the link, excluding the room-wide term.
  double motion_noise_std_db(const BodyState& body,
                             const Segment& link) const;
  double motion_noise_std_db(const BodyState& body,
                             const PrecomputedSegment& link) const;

  /// Diffuse scattered-multipath noise a moving body adds to a link even
  /// without touching its LoS; decays with the body's distance from the
  /// link (reflected paths still pass near everything in a small office,
  /// but not in a hall).
  double ambient_noise_std_db(const BodyState& body,
                              const Segment& link) const;
  double ambient_noise_std_db(const BodyState& body,
                              const PrecomputedSegment& link) const;

  const BodyModelConfig& config() const { return config_; }

 private:
  BodyModelConfig config_;
};

}  // namespace fadewich::rf
