// Log-distance path-loss model for cluttered indoor propagation:
//
//   PL(d) = PL(d0) + 10 * n * log10(d / d0)
//
// with exponent n ~ 3 for an office (RADAR reports 1.6-3.3 indoors).
// Distances below d_min are clamped so co-located devices don't produce
// infinite received power.
#pragma once

namespace fadewich::rf {

struct PathLossConfig {
  double reference_loss_db = 40.0;  // PL(d0) at d0 = 1 m, 2.4 GHz
  double exponent = 3.0;            // indoor cluttered office
  double reference_distance_m = 1.0;
  double min_distance_m = 0.2;
};

class LogDistancePathLoss {
 public:
  explicit LogDistancePathLoss(PathLossConfig config = {});

  /// Path loss in dB at the given distance (metres, >= 0).
  double loss_db(double distance_m) const;

  const PathLossConfig& config() const { return config_; }

 private:
  PathLossConfig config_;
};

}  // namespace fadewich::rf
