// Minimal 2-D geometry for the office floor plan and the link/body model.
// The simulator works in the horizontal plane at sensor height (the paper
// mounted all sensors ~1 m from the ground, slightly above desk height).
#pragma once

#include <cmath>

namespace fadewich::rf {

struct Point {
  double x = 0.0;
  double y = 0.0;

  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  Point operator*(double s) const { return {x * s, y * s}; }

  double dot(const Point& o) const { return x * o.x + y * o.y; }
  double norm() const { return std::sqrt(x * x + y * y); }
};

double distance(const Point& a, const Point& b);

struct Segment {
  Point a;
  Point b;

  double length() const { return distance(a, b); }
};

/// Shortest distance from point p to the segment.
double point_segment_distance(const Point& p, const Segment& s);

/// A segment with its derived quantities cached.  The channel hot path
/// evaluates body/link geometry for every (body, link) pair on every
/// tick; the length and direction of a link never change, so they are
/// computed once here instead of per query.
struct PrecomputedSegment {
  Point a;
  Point b;
  Point dir;            // b - a
  double length = 0.0;  // |b - a|
  double inv_len2 = 0.0;  // 1 / dir.dot(dir); 0 for degenerate segments

  PrecomputedSegment() = default;
  explicit PrecomputedSegment(const Segment& s);

  Segment segment() const { return {a, b}; }
};

/// Shortest distance from point p to the precomputed segment; identical
/// to the Segment overload.
double point_segment_distance(const Point& p, const PrecomputedSegment& s);

/// Excess path length via the precomputed segment; identical to the
/// Segment overload.
double excess_path_length(const Point& p, const PrecomputedSegment& s);

/// Excess path length of a reflection/diffraction via p:
///   d(a, p) + d(p, b) - d(a, b)  (>= 0; 0 iff p lies on the segment).
/// This is the canonical radio-tomography measure of how strongly a body
/// at p obstructs the a-b link.
double excess_path_length(const Point& p, const Segment& s);

/// Linear interpolation between two points, t in [0, 1].
Point lerp(const Point& a, const Point& b, double t);

}  // namespace fadewich::rf
