#include "fadewich/rf/body_shadowing.hpp"

#include <algorithm>
#include <cmath>

#include "fadewich/common/error.hpp"

namespace fadewich::rf {

BodyShadowingModel::BodyShadowingModel(BodyModelConfig config)
    : config_(config) {
  FADEWICH_EXPECTS(config_.max_attenuation_db >= 0.0);
  FADEWICH_EXPECTS(config_.shadow_decay_m > 0.0);
  FADEWICH_EXPECTS(config_.motion_decay_m > 0.0);
  FADEWICH_EXPECTS(config_.reference_speed > 0.0);
}

namespace {

// The three kernels are identical for plain and precomputed segments;
// only the geometry queries differ in cost.
template <typename SegmentLike>
double attenuation_impl(const BodyModelConfig& config, const BodyState& body,
                        const SegmentLike& link) {
  const double excess = excess_path_length(body.position, link);
  return config.max_attenuation_db *
         std::exp(-excess / config.shadow_decay_m);
}

template <typename SegmentLike>
double motion_noise_impl(const BodyModelConfig& config, const BodyState& body,
                         const SegmentLike& link) {
  if (body.speed <= 0.0) return 0.0;
  const double excess = excess_path_length(body.position, link);
  const double speed_factor =
      std::min(body.speed / config.reference_speed, 1.5);
  return config.motion_noise_db * speed_factor *
         std::exp(-excess / config.motion_decay_m);
}

template <typename SegmentLike>
double ambient_noise_impl(const BodyModelConfig& config, const BodyState& body,
                          const SegmentLike& link) {
  if (body.speed <= 0.0) return 0.0;
  const double d = point_segment_distance(body.position, link);
  return config.ambient_motion_db * std::min(body.speed, 2.0) *
         std::exp(-d / config.ambient_decay_m);
}

}  // namespace

double BodyShadowingModel::attenuation_db(const BodyState& body,
                                          const Segment& link) const {
  return attenuation_impl(config_, body, link);
}

double BodyShadowingModel::attenuation_db(
    const BodyState& body, const PrecomputedSegment& link) const {
  return attenuation_impl(config_, body, link);
}

double BodyShadowingModel::motion_noise_std_db(const BodyState& body,
                                               const Segment& link) const {
  return motion_noise_impl(config_, body, link);
}

double BodyShadowingModel::motion_noise_std_db(
    const BodyState& body, const PrecomputedSegment& link) const {
  return motion_noise_impl(config_, body, link);
}

double BodyShadowingModel::ambient_noise_std_db(
    const BodyState& body, const Segment& link) const {
  return ambient_noise_impl(config_, body, link);
}

double BodyShadowingModel::ambient_noise_std_db(
    const BodyState& body, const PrecomputedSegment& link) const {
  return ambient_noise_impl(config_, body, link);
}

}  // namespace fadewich::rf
