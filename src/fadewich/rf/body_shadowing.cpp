#include "fadewich/rf/body_shadowing.hpp"

#include <algorithm>
#include <cmath>

#include "fadewich/common/error.hpp"

namespace fadewich::rf {

BodyShadowingModel::BodyShadowingModel(BodyModelConfig config)
    : config_(config) {
  FADEWICH_EXPECTS(config_.max_attenuation_db >= 0.0);
  FADEWICH_EXPECTS(config_.shadow_decay_m > 0.0);
  FADEWICH_EXPECTS(config_.motion_decay_m > 0.0);
  FADEWICH_EXPECTS(config_.reference_speed > 0.0);
}

double BodyShadowingModel::attenuation_db(const BodyState& body,
                                          const Segment& link) const {
  const double excess = excess_path_length(body.position, link);
  return config_.max_attenuation_db *
         std::exp(-excess / config_.shadow_decay_m);
}

double BodyShadowingModel::motion_noise_std_db(const BodyState& body,
                                               const Segment& link) const {
  if (body.speed <= 0.0) return 0.0;
  const double excess = excess_path_length(body.position, link);
  const double speed_factor =
      std::min(body.speed / config_.reference_speed, 1.5);
  return config_.motion_noise_db * speed_factor *
         std::exp(-excess / config_.motion_decay_m);
}

double BodyShadowingModel::ambient_noise_std_db(
    const BodyState& body, const Segment& link) const {
  if (body.speed <= 0.0) return 0.0;
  const double d = point_segment_distance(body.position, link);
  return config_.ambient_motion_db * std::min(body.speed, 2.0) *
         std::exp(-d / config_.ambient_decay_m);
}

}  // namespace fadewich::rf
