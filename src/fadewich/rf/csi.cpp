#include "fadewich/rf/csi.hpp"

#include <algorithm>
#include <cmath>

#include "fadewich/common/error.hpp"
#include "fadewich/rf/pathloss.hpp"

namespace fadewich::rf {

CsiChannelMatrix::CsiChannelMatrix(std::vector<Point> sensors,
                                   CsiConfig config, std::uint64_t seed)
    : sensors_(std::move(sensors)),
      config_(config),
      body_model_(config.channel.body),
      noise_rng_(seed) {
  FADEWICH_EXPECTS(sensors_.size() >= 2);
  FADEWICH_EXPECTS(config_.subcarriers >= 1);
  FADEWICH_EXPECTS(config_.quantize_step_db > 0.0);
  Rng root(seed);
  Rng static_rng = root.split(1);
  Rng fading_seed_rng = root.split(2);
  noise_rng_ = root.split(3);

  const LogDistancePathLoss path_loss(config_.channel.path_loss);
  const std::size_t m = sensors_.size();
  links_.reserve(m * (m - 1));
  for (std::size_t tx = 0; tx < m; ++tx) {
    for (std::size_t rx = 0; rx < m; ++rx) {
      if (tx == rx) continue;
      LinkState link;
      link.segment = {sensors_[tx], sensors_[rx]};
      link.static_rssi_dbm =
          config_.channel.tx_power_dbm -
          path_loss.loss_db(link.segment.length()) -
          static_rng.normal(0.0, config_.channel.link_shadow_sigma_db);
      link.subcarriers.reserve(config_.subcarriers);
      for (std::size_t k = 0; k < config_.subcarriers; ++k) {
        link.subcarriers.push_back(Subcarrier{
            static_rng.normal(0.0, config_.frequency_selectivity_db),
            1.0 + static_rng.normal(0.0, config_.body_response_spread),
            Ar1Fading(config_.channel.fading,
                      fading_seed_rng.split(links_.size() *
                                                config_.subcarriers +
                                            k))});
      }
      links_.push_back(std::move(link));
    }
  }
}

void CsiChannelMatrix::sample(std::span<const BodyState> bodies,
                              std::span<double> out) {
  FADEWICH_EXPECTS(out.size() == stream_count());
  std::size_t index = 0;
  for (LinkState& link : links_) {
    // Link-level body effects, shared across subcarriers.
    double attenuation = 0.0;
    double noise_var = 0.0;
    for (const BodyState& body : bodies) {
      attenuation += body_model_.attenuation_db(body, link.segment);
      const double motion =
          body_model_.motion_noise_std_db(body, link.segment);
      const double ambient =
          body_model_.ambient_noise_std_db(body, link.segment);
      noise_var += motion * motion + ambient * ambient;
    }
    const double noise_std = noise_var > 0.0 ? std::sqrt(noise_var) : 0.0;

    for (Subcarrier& sub : link.subcarriers) {
      double value = link.static_rssi_dbm + sub.static_offset_db +
                     sub.fading.step() - attenuation * sub.body_response;
      if (noise_std > 0.0) {
        value += noise_rng_.normal(0.0, noise_std);
      }
      value = std::clamp(value, config_.channel.rssi_floor_dbm,
                         config_.channel.rssi_ceiling_dbm);
      value = std::round(value / config_.quantize_step_db) *
              config_.quantize_step_db;
      out[index++] = value;
    }
  }
}

}  // namespace fadewich::rf
