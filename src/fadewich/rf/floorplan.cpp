#include "fadewich/rf/floorplan.hpp"

#include "fadewich/common/error.hpp"

namespace fadewich::rf {

const std::vector<std::size_t>& FloorPlan::deployment_priority() {
  // 0-based indices of d1..d9: spread coverage for small deployments —
  // right wall (door side), mid top wall, mid bottom wall, left wall,
  // then fill the gaps.
  static const std::vector<std::size_t> order = {
      0,  // d1 right wall
      2,  // d3 top
      7,  // d8 bottom centre
      5,  // d6 left wall
      4,  // d5 top right
      8,  // d9 bottom left
      1,  // d2 top left
      6,  // d7 bottom right
      3,  // d4 top centre-right
  };
  return order;
}

FloorPlan FloorPlan::with_sensor_count(std::size_t n) const {
  FADEWICH_EXPECTS(n >= 1 && n <= sensors.size());
  FloorPlan out = *this;
  out.sensors.clear();
  const auto& order = deployment_priority();
  // The priority list is written for the 9-sensor paper office; fall back
  // to natural order for other deployments.
  if (sensors.size() == order.size()) {
    std::vector<std::size_t> keep(order.begin(),
                                  order.begin() + static_cast<long>(n));
    for (std::size_t idx : keep) out.sensors.push_back(sensors[idx]);
  } else {
    for (std::size_t i = 0; i < n; ++i) out.sensors.push_back(sensors[i]);
  }
  return out;
}

FloorPlan paper_office() {
  FloorPlan plan;
  plan.width = 6.0;
  plan.height = 3.0;
  plan.sensors = {
      {6.0, 1.5},   // d1: right wall, middle
      {1.0, 3.0},   // d2: top wall
      {2.33, 3.0},  // d3: top wall
      {3.67, 3.0},  // d4: top wall
      {5.0, 3.0},   // d5: top wall
      {0.0, 1.5},   // d6: left wall, middle
      {4.5, 0.0},   // d7: bottom wall
      {3.0, 0.0},   // d8: bottom wall
      {1.5, 0.0},   // d9: bottom wall
  };
  plan.workstations = {
      {"w1", {4.3, 2.5}, {4.3, 1.9}},
      {"w2", {2.1, 2.5}, {2.1, 1.9}},
      {"w3", {0.7, 0.7}, {1.2, 1.1}},
  };
  plan.door = {5.6, 0.0};
  plan.corridor = {3.0, 1.4};
  return plan;
}

}  // namespace fadewich::rf
