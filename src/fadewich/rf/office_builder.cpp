#include "fadewich/rf/office_builder.hpp"

#include <cmath>
#include <string>

#include "fadewich/common/error.hpp"

namespace fadewich::rf {

namespace {

/// Point at arc length `s` along the room perimeter, measured
/// counter-clockwise from the bottom-left corner.
Point perimeter_point(double width, double height, double s) {
  const double perimeter = 2.0 * (width + height);
  s = std::fmod(s, perimeter);
  if (s < 0.0) s += perimeter;
  if (s < width) return {s, 0.0};
  s -= width;
  if (s < height) return {width, s};
  s -= height;
  if (s < width) return {width - s, height};
  s -= width;
  return {0.0, height - s};
}

}  // namespace

FloorPlan build_office(const OfficeSpec& spec) {
  FADEWICH_EXPECTS(spec.width >= 3.0);
  FADEWICH_EXPECTS(spec.height >= 2.5);
  FADEWICH_EXPECTS(spec.workstations >= 1);
  FADEWICH_EXPECTS(spec.sensors >= 2);

  FloorPlan plan;
  plan.width = spec.width;
  plan.height = spec.height;
  plan.door = {spec.width - 0.4, 0.0};
  plan.corridor = {spec.width / 2.0, spec.height / 2.0 - 0.1};

  // Sensors: equal arc spacing around the walls, phase-shifted so the
  // first sensor lands on the wall opposite the door.
  const double perimeter = 2.0 * (spec.width + spec.height);
  const double phase = spec.width + spec.height + spec.width / 2.0;
  for (std::size_t i = 0; i < spec.sensors; ++i) {
    const double s = phase + perimeter * static_cast<double>(i) /
                                 static_cast<double>(spec.sensors);
    plan.sensors.push_back(perimeter_point(spec.width, spec.height, s));
  }

  // Desks: top wall first (facing down), then the left wall.
  const double desk_pitch = 1.6;  // metres of wall per desk
  const auto top_capacity = static_cast<std::size_t>(
      std::floor((spec.width - 1.0) / desk_pitch));
  const auto left_capacity = static_cast<std::size_t>(
      std::floor((spec.height - 1.0) / desk_pitch));
  if (spec.workstations > top_capacity + left_capacity) {
    throw Error("office too small for " +
                std::to_string(spec.workstations) + " workstations");
  }
  for (std::size_t i = 0; i < spec.workstations; ++i) {
    Workstation ws;
    ws.name = "w" + std::to_string(i + 1);
    if (i < top_capacity) {
      const double x = 0.8 + desk_pitch * static_cast<double>(i);
      ws.seat = {x, spec.height - 0.5};
      ws.stand_point = {x, spec.height - 1.1};
    } else {
      const double y =
          0.8 + desk_pitch * static_cast<double>(i - top_capacity);
      ws.seat = {0.5, y};
      ws.stand_point = {1.1, y};
    }
    plan.workstations.push_back(ws);
  }
  return plan;
}

}  // namespace fadewich::rf
