// Channel State Information (CSI) extension — the paper's future work
// ("whether more fine grained information that can be provided by the
// wireless channel (such as channel state information) can improve the
// system performance").
//
// Where RSSI collapses a link to one coarsely quantised number, CSI
// reports the channel per OFDM subcarrier.  The model: each directed
// link carries `subcarriers` frequency-selective components —
// independent AR(1) fading per subcarrier, a per-subcarrier static
// frequency response, and the shared body shadowing of the link scaled
// by a per-subcarrier body response (obstruction is frequency dependent
// within ~±20%).  Measurements are quantised at CSI-grade resolution
// (0.25 dB) instead of the 1 dB of RSSI.
//
// Output layout: stream-major, subcarrier-minor — value index
// (link * subcarriers + k), with links ordered like rf::ChannelMatrix.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fadewich/common/rng.hpp"
#include "fadewich/rf/body_shadowing.hpp"
#include "fadewich/rf/channel.hpp"

namespace fadewich::rf {

struct CsiConfig {
  std::size_t subcarriers = 8;
  double quantize_step_db = 0.25;  // CSI-grade amplitude resolution
  double frequency_selectivity_db = 2.0;  // static per-subcarrier spread
  double body_response_spread = 0.2;      // +-20% obstruction variation
  ChannelConfig channel;  // link budget, fading, body model, bursts
};

class CsiChannelMatrix {
 public:
  /// Requires >= 2 sensors and >= 1 subcarrier.
  CsiChannelMatrix(std::vector<Point> sensors, CsiConfig config,
                   std::uint64_t seed);

  std::size_t sensor_count() const { return sensors_.size(); }
  std::size_t link_count() const { return links_.size(); }
  /// Total measurement streams: m * (m - 1) * subcarriers.
  std::size_t stream_count() const {
    return links_.size() * config_.subcarriers;
  }

  /// Advance one tick; `out` (size stream_count()) receives per-
  /// subcarrier channel magnitudes in dB.
  void sample(std::span<const BodyState> bodies, std::span<double> out);

  const CsiConfig& config() const { return config_; }

 private:
  struct Subcarrier {
    double static_offset_db = 0.0;  // frequency response of the link
    double body_response = 1.0;     // obstruction scaling
    Ar1Fading fading;
  };
  struct LinkState {
    Segment segment;
    double static_rssi_dbm = 0.0;
    std::vector<Subcarrier> subcarriers;
  };

  std::vector<Point> sensors_;
  CsiConfig config_;
  BodyShadowingModel body_model_;
  std::vector<LinkState> links_;
  Rng noise_rng_;
};

}  // namespace fadewich::rf
