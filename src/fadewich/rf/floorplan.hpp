// Office floor plan: room extent, sensor positions, workstation seats and
// the single door.  `paper_office()` reconstructs the layout of Fig. 6:
// a 6 m x 3 m room, nine wall-mounted sensors, three workstations, one
// entrance.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fadewich/rf/geometry.hpp"

namespace fadewich::rf {

struct Workstation {
  std::string name;   // "w1", ...
  Point seat;         // where the user sits
  Point stand_point;  // where the user stands when getting up
};

struct FloorPlan {
  double width = 0.0;   // metres, x in [0, width]
  double height = 0.0;  // metres, y in [0, height]
  std::vector<Point> sensors;          // d1..dm in paper order
  std::vector<Workstation> workstations;  // w1..wk
  Point door;  // the single entrance (on a wall)
  // Waypoint inside the room that walking paths route through, so
  // trajectories bend around desks instead of crossing them.
  Point corridor;

  std::size_t sensor_count() const { return sensors.size(); }
  std::size_t workstation_count() const { return workstations.size(); }

  bool contains(const Point& p) const {
    return p.x >= 0.0 && p.x <= width && p.y >= 0.0 && p.y <= height;
  }

  /// Keep the first `n` sensors of the deployment priority order (a fixed
  /// spatially spread order, mirroring the paper's "number of sensors"
  /// sweeps).  Requires 1 <= n <= sensor_count().
  FloorPlan with_sensor_count(std::size_t n) const;

  /// Deployment priority order: indices into `sensors`, most valuable
  /// first.  Chosen to keep coverage spread for small n (door-side,
  /// mid-room, opposite wall, ...).
  static const std::vector<std::size_t>& deployment_priority();
};

/// The Fig. 6 office: 6 m x 3 m, sensors d1 (right wall), d2..d5 (top
/// wall), d6 (left wall), d7..d9 (bottom wall), workstations w1, w2 along
/// the top wall and w3 near the bottom-left, door on the bottom-right.
/// Average seat-to-door walking distance is ~4 m, matching Section VII-A.
FloorPlan paper_office();

}  // namespace fadewich::rf
