#include "fadewich/rf/pathloss.hpp"

#include <algorithm>
#include <cmath>

#include "fadewich/common/error.hpp"

namespace fadewich::rf {

LogDistancePathLoss::LogDistancePathLoss(PathLossConfig config)
    : config_(config) {
  FADEWICH_EXPECTS(config_.exponent > 0.0);
  FADEWICH_EXPECTS(config_.reference_distance_m > 0.0);
  FADEWICH_EXPECTS(config_.min_distance_m > 0.0);
}

double LogDistancePathLoss::loss_db(double distance_m) const {
  FADEWICH_EXPECTS(distance_m >= 0.0);
  const double d = std::max(distance_m, config_.min_distance_m);
  return config_.reference_loss_db +
         10.0 * config_.exponent *
             std::log10(d / config_.reference_distance_m);
}

}  // namespace fadewich::rf
