// Full radio channel between every ordered pair of sensors.
//
// Stream (i -> j) models device j's RSSI measurement of packets sent by
// device i.  The measured value combines:
//
//   RSSI = P_tx - PL(d_ij) - S_ij                (static link budget)
//          - sum_bodies attenuation(body, link)  (body shadowing)
//          + fading_ij(t)                        (AR(1) multipath drift)
//          + N(0, motion noise)                  (bodies moving nearby)
//
// quantised to whole dBm like real radios report it.  Reciprocal streams
// (i->j and j->i) share geometry and body attenuation but carry
// independent fading/noise, which is what makes their variances correlate
// strongly in Fig. 11 without being identical.
//
// Every stream owns its noise generator (seeded deterministically at
// construction), so streams are statistically and computationally
// independent: sample_block() can compute them on different threads and
// still produce output bit-identical to tick-by-tick sample() calls.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fadewich/common/rng.hpp"
#include "fadewich/common/simd_kernels.hpp"
#include "fadewich/common/time.hpp"
#include "fadewich/rf/body_shadowing.hpp"
#include "fadewich/rf/fading.hpp"
#include "fadewich/rf/geometry.hpp"
#include "fadewich/rf/jammer.hpp"
#include "fadewich/rf/pathloss.hpp"

namespace fadewich::exec {
class ThreadPool;
}  // namespace fadewich::exec

namespace fadewich::rf {

struct ChannelConfig {
  double tx_power_dbm = 0.0;          // CC2420-class radio at full power
  double link_shadow_sigma_db = 2.0;  // static per-link shadowing spread
  double direction_offset_sigma_db = 0.7;  // RX calibration asymmetry
  double rssi_floor_dbm = -100.0;
  double rssi_ceiling_dbm = -20.0;
  bool quantize = true;  // report whole dBm like real hardware
  double tick_hz = 5.0;  // sampling rate, used to time interference bursts
  // Ambient interference bursts: short periods during which a random
  // subset of links sees extra RSSI noise (co-channel WiFi traffic,
  // microwave ovens, corridor activity).  These are the paper's "other
  // uncontrolled changes that may result in variation windows even if no
  // one is moving" — the source of MD's false positives.  Set
  // interference_mean_gap_s <= 0 to disable.
  double interference_mean_gap_s = 3600.0;
  double interference_mean_duration_s = 1.4;
  double interference_max_std_db = 3.5;
  double interference_link_fraction = 0.5;
  // Slow baseline drift (thermal cycles, HVAC, equipment warming up):
  // each link's mean level wanders sinusoidally with a random phase.
  // This is why MD's normal profile must self-update (Section IV-C3:
  // "behavior of the streams varies slightly depending on several
  // factors") — a static threshold goes stale within hours.  Amplitude 0
  // disables it.
  double baseline_drift_amplitude_db = 0.0;
  double baseline_drift_period_s = 3.0 * 3600.0;
  // Slow drift of the noise LEVEL shared by the whole band (co-channel
  // load varying over the day): fading output scaled by
  // 1 + f * sin(2*pi*t/T).  This is the drift MD actually feels — its
  // statistic is a standard deviation, so mean drift is invisible but a
  // band-wide variance drift moves the whole s_t distribution.
  // Fraction 0 disables it.
  double noise_drift_fraction = 0.0;
  PathLossConfig path_loss;
  FadingConfig fading;
  BodyModelConfig body;
};

class ChannelMatrix {
 public:
  /// Build channels for all ordered sensor pairs.  Requires >= 2 sensors.
  ChannelMatrix(std::vector<Point> sensors, ChannelConfig config,
                std::uint64_t seed);

  std::size_t sensor_count() const { return sensors_.size(); }
  /// Number of directed streams: m * (m - 1).
  std::size_t stream_count() const { return links_.size(); }

  /// Index of stream (tx -> rx) in sample order.  Requires tx != rx and
  /// both in range.
  std::size_t stream_index(std::size_t tx, std::size_t rx) const;

  /// (tx, rx) pair of a stream index.
  std::pair<std::size_t, std::size_t> stream_pair(std::size_t stream) const;

  /// The physical segment of a stream.
  const Segment& link(std::size_t stream) const;

  /// Advance one tick: sample RSSI on every stream given the current body
  /// states.  Output size equals stream_count().
  void sample(std::span<const BodyState> bodies, std::span<double> out);

  /// Sample with active jammers (Section V-C): each jammer adds
  /// receiver-side interference noise on top of the normal channel.
  void sample(std::span<const BodyState> bodies,
              std::span<const Jammer> jammers, std::span<double> out);

  /// Convenience allocating overload.
  std::vector<double> sample(std::span<const BodyState> bodies);

  /// Batched sampling: advance `bodies_per_tick.size()` consecutive ticks
  /// in one call.  `bodies_per_tick[t]` lists the bodies present at tick
  /// t; `out` is row-major [tick][stream] and must hold
  /// bodies_per_tick.size() * stream_count() values.
  ///
  /// The per-tick global state (interference bursts, drift clock) is
  /// advanced serially first; the per-stream time series are then
  /// computed independently — in parallel when `pool` is given — each
  /// from its own RNG.  Output is bit-identical to the equivalent
  /// sequence of sample() calls at any thread count.
  void sample_block(std::span<const std::vector<BodyState>> bodies_per_tick,
                    std::span<double> out,
                    exec::ThreadPool* pool = nullptr);

  const ChannelConfig& config() const { return config_; }

 private:
  struct LinkState {
    Segment segment;
    PrecomputedSegment geom;       // cached length/direction for hot loops
    double static_rssi_dbm = 0.0;  // P_tx - PL - shadowing - offset
    double drift_phase = 0.0;      // baseline drift phase offset
    Ar1Fading fading;
    Rng noise_rng;  // per-stream: keeps streams independent across threads
  };

  void advance_interference();
  /// Deterministic base + the link's fading draw (stream prologue).
  double stream_base(LinkState& ls, double drift_arg) const;
  /// Interference variance, noise draw, clamp, quantise (epilogue).
  double finish_stream(LinkState& ls, double rssi, double noise_var,
                       double interference_std_db) const;
  /// SoA geometry view starting at stream s (the whole bank at s = 0).
  simd::ShadowGeomView geom_view(std::size_t s) const;

  std::vector<Point> sensors_;
  ChannelConfig config_;
  BodyShadowingModel body_model_;
  LogDistancePathLoss path_loss_;  // constants cached once, not per call
  std::vector<LinkState> links_;
  // Structure-of-arrays copy of every link's cached geometry, filled once
  // at construction: the wide shadowing kernel loads lane j's segment
  // from element j of each array.  sample_block slices the same arrays at
  // per-worker offsets, so both paths run the identical kernel.
  std::vector<double> geo_ax_, geo_ay_, geo_bx_, geo_by_;
  std::vector<double> geo_dirx_, geo_diry_, geo_len_, geo_inv_len2_;
  Rng noise_rng_;  // interference burst scheduling only

  // Interference burst state.
  double interference_gap_ticks_ = 0.0;       // until the next burst
  double interference_remaining_ticks_ = 0.0;  // of the current burst
  double interference_std_db_ = 0.0;
  // Affected-link mask, one byte per stream (not vector<bool>: byte loads
  // keep the hot loop branch-free and the buffer reusable in place).
  // Sized once at construction, overwritten per burst.
  std::vector<std::uint8_t> interference_affected_;
  std::uint64_t interference_burst_seq_ = 0;  // bursts started so far

  // sample_block staging, retained across calls so the steady-state loop
  // is allocation-free once warmed: per-tick drift phase, interference
  // level, burst snapshot index, and the flat [burst][stream] mask
  // snapshots.  Members (not thread-local scratch) because pool workers
  // read them concurrently during the parallel stream loop.
  std::vector<double> blk_drift_args_;
  std::vector<double> blk_tick_std_;
  std::vector<std::uint32_t> blk_burst_of_;
  std::vector<std::uint8_t> blk_affected_;

  Tick tick_ = 0;  // samples taken, for the baseline drift clock
};

}  // namespace fadewich::rf
