#include "fadewich/fleet/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "fadewich/common/crc32.hpp"
#include "fadewich/common/error.hpp"

namespace fadewich::fleet {

namespace {

constexpr const char* kLatencyName = "fadewich_fleet_deauth_latency_seconds";

std::string office_label(std::size_t office) {
  return std::to_string(office);
}

}  // namespace

Fleet::Fleet(FleetConfig config, exec::ThreadPool* pool)
    : config_(std::move(config)),
      pool_(pool != nullptr ? pool : &exec::ThreadPool::global()) {
  if (config_.offices < 1) throw Error("fleet config: offices must be >= 1");
  if (config_.supervise_every < 0) {
    throw Error("fleet config: supervise_every must be >= 0");
  }
  if (config_.checkpoint_period < 1) {
    throw Error("fleet config: checkpoint_period must be >= 1");
  }

  auto& registry = obs::MetricsRegistry::global();
  fleet_latency_ = registry.histogram(
      kLatencyName, "Leave-to-deauthentication latency across the fleet");
  const bool per_office =
      config_.per_office_series &&
      config_.offices <= config_.per_office_series_cap;

  // Shard construction is the expensive part (pipeline + script setup),
  // so it fans out on the pool; metric handles are minted serially first
  // because the registry hands them out under a lock anyway.
  std::vector<ShardMetrics> metrics(config_.offices);
  for (std::size_t i = 0; i < config_.offices; ++i) {
    ShardMetrics m;
    if (per_office) {
      const std::string office = office_label(i);
      m.ticks = registry.counter(
          obs::labeled("fadewich_fleet_office_ticks_total",
                       {{"office", office}}),
          "Ticks stepped by one office");
      m.deauths = registry.counter(
          obs::labeled("fadewich_fleet_office_deauths_total",
                       {{"office", office}}),
          "On-time deauthentications by one office");
      m.spurious_deauths = registry.counter(
          obs::labeled("fadewich_fleet_office_spurious_deauths_total",
                       {{"office", office}}),
          "Spurious deauthentications by one office");
    } else {
      m.ticks = registry.counter("fadewich_fleet_ticks_total",
                                 "Ticks stepped across the fleet");
      m.deauths = registry.counter(
          "fadewich_fleet_deauths_total",
          "On-time deauthentications across the fleet");
      m.spurious_deauths = registry.counter(
          "fadewich_fleet_spurious_deauths_total",
          "Spurious deauthentications across the fleet");
    }
    m.deauth_latency = fleet_latency_;
    metrics[i] = m;
  }

  shards_.resize(config_.offices);
  pool_->parallel_for(0, config_.offices, [&](std::size_t i) {
    auto shard = std::make_unique<OfficeShard>(
        i, exec::task_seed(config_.seed, i), config_.shard);
    shard->set_metrics(metrics[i]);
    shards_[i] = std::move(shard);
  });

  if (!config_.snapshot_root.empty()) {
    persist::SupervisorConfig sup = config_.supervisor;
    const Tick quantum = config_.supervise_every > 0
                             ? config_.supervise_every
                             : static_cast<Tick>(config_.shard.block_ticks);
    // A shard only heartbeats at block boundaries; a stall threshold
    // tighter than two blocks would restart healthy shards.
    sup.stall_ticks = std::max(sup.stall_ticks, 2 * quantum);
    supervisor_ = std::make_unique<persist::Supervisor>(sup);
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      persist::RecoveryConfig recovery;
      recovery.directory =
          config_.snapshot_root + "/office-" + std::to_string(i);
      shards_[i]->enable_persistence(std::move(recovery),
                                     config_.checkpoint_period);
      OfficeShard* shard = shards_[i].get();
      supervisor_->add_module(module_name(i), [this, shard] {
        if (!shard->restore_from_ring()) shard->reset_to_cold();
        shard->run_until(current_boundary_);
        return !shard->faulted();
      });
    }
  }
}

std::string Fleet::module_name(std::size_t office) const {
  return "office-" + std::to_string(office);
}

void Fleet::supervise(Tick boundary, std::size_t* restarts) {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const OfficeShard& shard = *shards_[i];
    if (shard.faulted()) {
      supervisor_->report_failure(module_name(i), boundary,
                                  shard.fault_what());
    } else {
      supervisor_->heartbeat(module_name(i), boundary);
    }
  }
  *restarts += supervisor_->poll(boundary);
}

RunStats Fleet::run_week(Tick ticks) {
  FADEWICH_EXPECTS(ticks >= 0);
  const auto start = std::chrono::steady_clock::now();
  const Tick target = cursor_ + ticks;
  const Tick quantum = config_.supervise_every > 0
                           ? config_.supervise_every
                           : static_cast<Tick>(config_.shard.block_ticks);
  std::size_t restarts = 0;

  while (cursor_ < target) {
    const Tick boundary = std::min(cursor_ + quantum, target);
    current_boundary_ = boundary;
    pool_->parallel_for(0, shards_.size(), [&](std::size_t i) {
      shards_[i]->run_until(boundary);
    });
    if (supervisor_ != nullptr) supervise(boundary, &restarts);
    cursor_ = boundary;
  }

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  RunStats stats;
  stats.ticks = ticks;
  stats.wall_seconds = wall;
  stats.restarts = restarts;
  if (wall > 0.0) {
    stats.ticks_per_sec =
        static_cast<double>(ticks) * static_cast<double>(offices()) / wall;
    stats.offices_per_sec = static_cast<double>(offices()) / wall;
  }
  last_run_ = stats;
  return stats;
}

void Fleet::inject_crash(std::size_t office, Tick tick) {
  FADEWICH_EXPECTS(office < shards_.size());
  if (tick < cursor_) {
    throw Error("fleet: cannot inject a crash behind the cursor");
  }
  shards_[office]->kill_at(tick);
}

const OfficeShard& Fleet::shard(std::size_t office) const {
  FADEWICH_EXPECTS(office < shards_.size());
  return *shards_[office];
}

std::uint32_t Fleet::fleet_digest() const {
  Crc32 digest;
  for (const auto& shard : shards_) {
    const std::uint32_t d = shard->digest();
    digest.update(&d, sizeof(d));
  }
  return digest.value();
}

std::uint32_t Fleet::shard_digest(std::size_t office) const {
  FADEWICH_EXPECTS(office < shards_.size());
  return shards_[office]->digest();
}

std::uint64_t Fleet::total_deauths() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->deauths();
  return total;
}

std::uint64_t Fleet::total_spurious_deauths() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->spurious_deauths();
  return total;
}

std::uint64_t Fleet::total_restarts() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->restores();
  return total;
}

double Fleet::memory_bytes_per_office() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->memory_bytes();
  return static_cast<double>(total) / static_cast<double>(shards_.size());
}

persist::HealthReport Fleet::supervisor_health() const {
  if (supervisor_ == nullptr) return {};
  return supervisor_->health();
}

obs::ScrapeReport Fleet::scrape() const {
  obs::ScrapeReport report = obs::scrape();

  obs::HealthBlock fleet;
  fleet.name = "fleet";
  fleet.add("offices", static_cast<double>(offices()));
  fleet.add("cursor_tick", static_cast<double>(cursor_));
  fleet.add("deauths", static_cast<double>(total_deauths()));
  fleet.add("spurious_deauths",
            static_cast<double>(total_spurious_deauths()));
  fleet.add("restarts", static_cast<double>(total_restarts()));
  fleet.add("memory_bytes_per_office", memory_bytes_per_office());
  fleet.add("ticks_per_sec", last_run_.ticks_per_sec);
  fleet.add("offices_per_sec", last_run_.offices_per_sec);
  // p99 from merged bucket counts: deterministic across thread counts,
  // unlike the racy-but-harmless floating sum.
  const obs::HistogramSample* latency =
      report.metrics.find_histogram(kLatencyName);
  fleet.add("deauth_latency_p99_seconds",
            latency != nullptr ? latency->percentile(0.99) : 0.0);
  report.health.push_back(std::move(fleet));

  if (supervisor_ != nullptr) {
    report.health.push_back(persist::health_block(supervisor_->health()));
  }
  return report;
}

}  // namespace fadewich::fleet
