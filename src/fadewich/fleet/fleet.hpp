// Campus-scale fleet: N independent office shards stepped in lockstep
// blocks on the work-stealing pool, supervised as a unit, and scraped as
// one observability document.
//
// Execution model.  run_week() advances every shard to a common tick
// boundary per block via parallel_for, then — serially, on the fleet
// thread — heartbeats healthy shards, reports faulted ones, and polls
// the supervisor (Supervisor is not thread-safe; supervision cost is
// O(offices) per block via the name index).  A shard's restart callback
// restores its newest snapshot (or cold-starts as a last resort) and
// replays forward to the current boundary, which the stateless per-tick
// driver makes exact: recovery of one shard cannot perturb any neighbor,
// and the recovered shard's own outputs past the snapshot are the same
// bytes it would have produced without the crash.
//
// Determinism.  Shard i's seed is task_seed(fleet seed, i), so its
// stream is a function of (fleet seed, i) alone — independent of fleet
// size, thread count, and block scheduling.  fleet_digest() folds the
// per-shard CRCs in index order; equal digests mean bit-identical weeks.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fadewich/exec/thread_pool.hpp"
#include "fadewich/fleet/office_shard.hpp"
#include "fadewich/obs/export.hpp"
#include "fadewich/persist/supervisor.hpp"

namespace fadewich::fleet {

struct FleetConfig {
  std::size_t offices = 16;
  std::uint64_t seed = 0xFADE'2017'0001ull;
  ShardConfig shard;  // template applied to every office

  /// Block quantum in ticks: shards run this far between supervision
  /// passes.  0 means shard.block_ticks.
  Tick supervise_every = 0;

  /// Root directory for per-office snapshot rings.  Empty disables
  /// persistence and supervision entirely (the 10k-office bench sweeps
  /// run unsupervised; recovery is exercised on small fleets).
  std::string snapshot_root;
  Tick checkpoint_period = 500;  // ticks between shard checkpoints
  persist::SupervisorConfig supervisor;  // stall_ticks raised to 2 blocks

  /// Mint per-office labeled series (fadewich_fleet_office_*{office="i"})
  /// while the fleet is at or under the cardinality cap; above it only
  /// the fleet aggregates are exported.
  bool per_office_series = true;
  std::size_t per_office_series_cap = 512;
};

/// One run_week() summary, for benches and the merged scrape.
struct RunStats {
  Tick ticks = 0;              // ticks advanced per shard this run
  double wall_seconds = 0.0;
  double ticks_per_sec = 0.0;  // total shard-ticks / wall
  double offices_per_sec = 0.0;  // offices advanced the full run / wall
  std::size_t restarts = 0;    // supervisor restarts during the run
};

class Fleet {
 public:
  /// Builds all shards (in parallel on `pool`) and, when snapshot_root
  /// is set, wires each one into the fleet supervisor.  `pool` defaults
  /// to the process-wide pool; the fleet does not own it.
  explicit Fleet(FleetConfig config, exec::ThreadPool* pool = nullptr);

  std::size_t offices() const { return shards_.size(); }
  Tick tick() const { return cursor_; }
  bool supervised() const { return supervisor_ != nullptr; }

  /// Advance every office by `ticks` in lockstep blocks.  Returns the
  /// run's throughput stats (also retained for scrape()).
  RunStats run_week(Tick ticks);

  /// Arm a one-shot crash in office `office` at absolute tick `tick`
  /// (must be ahead of the current cursor).  The fleet supervisor
  /// recovers it on the next supervision pass.
  void inject_crash(std::size_t office, Tick tick);

  const OfficeShard& shard(std::size_t office) const;

  /// CRC-32 fold of every shard digest in index order.
  std::uint32_t fleet_digest() const;
  std::uint32_t shard_digest(std::size_t office) const;

  std::uint64_t total_deauths() const;
  std::uint64_t total_spurious_deauths() const;
  std::uint64_t total_restarts() const;

  /// Mean fleet-layer bytes per office (staged blocks + arenas + shard
  /// objects); the bench trends this across the 10 -> 10k sweep.
  double memory_bytes_per_office() const;

  /// Supervisor view; empty report when the fleet is unsupervised.
  persist::HealthReport supervisor_health() const;

  /// One merged scrape: the global metrics snapshot (fleet aggregates
  /// plus per-office labeled series when minted), a "fleet" HealthBlock
  /// (offices, cursor, deauth totals, last-run throughput, p99 deauth
  /// latency, bytes per office), and the supervisor block when present.
  obs::ScrapeReport scrape() const;

 private:
  std::string module_name(std::size_t office) const;
  void supervise(Tick boundary, std::size_t* restarts);

  FleetConfig config_;
  exec::ThreadPool* pool_;
  std::vector<std::unique_ptr<OfficeShard>> shards_;
  std::unique_ptr<persist::Supervisor> supervisor_;

  Tick cursor_ = 0;           // common boundary all healthy shards reached
  Tick current_boundary_ = 0; // restart callbacks replay up to here
  RunStats last_run_;

  obs::Histogram fleet_latency_;  // shared by all shards: fleet-wide p99
};

}  // namespace fadewich::fleet
