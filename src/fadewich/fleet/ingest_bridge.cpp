#include "fadewich/fleet/ingest_bridge.hpp"

#include <algorithm>

#include "fadewich/common/error.hpp"

namespace fadewich::fleet {

IngestBridge::IngestBridge(BridgeConfig config) : config_(config) {
  if (config_.offices < 1) {
    throw Error("ingest bridge: offices must be >= 1");
  }
  if (config_.devices < 2) {
    throw Error("ingest bridge: devices must be >= 2");
  }
  if (config_.station.deadline_ticks != 0) {
    // Deadline release imputes rows from wall-clock-ish 'now' hints the
    // replay path does not carry; the bridge's gap fill covers losses.
    throw Error("ingest bridge: station must be strict (deadline 0)");
  }
  offices_.resize(config_.offices);
  for (Office& office : offices_) {
    office.station = std::make_unique<net::CentralStation>(
        config_.devices, config_.station);
  }
}

IngestBridge::Office& IngestBridge::at(std::size_t office) {
  if (office >= offices_.size()) {
    throw Error("ingest bridge: office index out of range");
  }
  return offices_[office];
}

const IngestBridge::Office& IngestBridge::at(std::size_t office) const {
  if (office >= offices_.size()) {
    throw Error("ingest bridge: office index out of range");
  }
  return offices_[office];
}

void IngestBridge::append_row(Office& office, const net::StationRow& row) {
  const std::size_t width = streams();
  if (row.tick < office.next_tick) return;  // stale (defensive; ordered
                                            // emission is monotone)
  // Gap fill: repeat the previous row (zeros before any) for ticks the
  // capture never completed, so shard tick t always reads a row and the
  // fill depends only on the delivered stream, never on lane count.
  while (office.next_tick < row.tick) {
    const std::size_t n = office.rows.size();
    if (n >= width) {
      office.rows.resize(n + width);
      std::copy_n(office.rows.begin() + static_cast<std::ptrdiff_t>(
                      n - width),
                  width,
                  office.rows.begin() + static_cast<std::ptrdiff_t>(n));
    } else {
      office.rows.resize(width, 0.0);
    }
    ++office.gap_rows;
    ++office.next_tick;
  }
  office.rows.insert(office.rows.end(), row.values.begin(),
                     row.values.end());
  ++office.next_tick;
}

net::IngestPlane::Sink IngestBridge::sink() {
  return [this](std::size_t shard,
                std::span<const net::Measurement> batch) {
    ingest(shard, batch);
  };
}

void IngestBridge::ingest(std::size_t office,
                          std::span<const net::Measurement> batch) {
  Office& o = at(office);
  o.station->ingest_ordered(
      batch, [this, &o](const net::StationRow& row) { append_row(o, row); });
}

void IngestBridge::finish() {
  for (Office& o : offices_) {
    o.station->finish_ordered(
        [this, &o](const net::StationRow& row) { append_row(o, row); });
  }
}

Tick IngestBridge::rows_ready_through(std::size_t office) const {
  return at(office).next_tick;
}

void IngestBridge::attach(OfficeShard& shard, std::size_t office) {
  Office& o = at(office);
  const std::size_t width = streams();
  if (shard.streams() != width) {
    throw Error("ingest bridge: shard streams != devices * (devices-1)");
  }
  shard.set_row_source([this, &o, width](Tick from, std::size_t count,
                                         common::FlatMatrix& block) {
    for (std::size_t i = 0; i < count; ++i) {
      const Tick tick = from + static_cast<Tick>(i);
      if (tick < o.base_tick || tick >= o.next_tick) {
        throw Error(
            "ingest bridge: shard stepped past rows_ready_through");
      }
      const std::size_t at_row =
          static_cast<std::size_t>(tick - o.base_tick) * width;
      double* out = block.row(i);
      std::copy_n(o.rows.begin() + static_cast<std::ptrdiff_t>(at_row),
                  width, out);
    }
  });
}

void IngestBridge::trim_before(std::size_t office, Tick tick) {
  Office& o = at(office);
  const Tick cut = std::min(tick, o.next_tick);
  if (cut <= o.base_tick) return;
  const std::size_t drop =
      static_cast<std::size_t>(cut - o.base_tick) * streams();
  o.rows.erase(o.rows.begin(),
               o.rows.begin() + static_cast<std::ptrdiff_t>(drop));
  o.base_tick = cut;
}

const net::StationHealth& IngestBridge::health(std::size_t office) const {
  return at(office).station->health();
}

std::uint64_t IngestBridge::gap_rows(std::size_t office) const {
  return at(office).gap_rows;
}

}  // namespace fadewich::fleet
