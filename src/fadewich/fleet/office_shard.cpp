#include "fadewich/fleet/office_shard.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "fadewich/common/error.hpp"
#include "fadewich/exec/thread_pool.hpp"

namespace fadewich::fleet {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Uniform in (0, 1] from one splitmix-mixed 64-bit word.
double unit_open(std::uint64_t z) {
  return (static_cast<double>(z >> 11) + 1.0) * 0x1.0p-53;
}

ShardConfig validated(ShardConfig config) {
  if (config.streams < 2 || config.workstations < 1 ||
      config.streams < config.workstations) {
    throw Error("shard config: need >= 2 streams and >= 1 workstation, "
                "streams >= workstations");
  }
  if (config.block_ticks < 1) {
    throw Error("shard config: block_ticks must be >= 1");
  }
  if (config.burst <= 0.0 || config.away <= 0.0 || config.rest <= 0.0 ||
      config.settle <= 0.0 || config.train_rounds < 1) {
    throw Error("shard config: script phases must be positive");
  }
  return config;
}

}  // namespace

core::SystemConfig default_shard_system() {
  core::SystemConfig config;
  config.tick_hz = 5.0;
  config.md.std_window = 2.0;
  config.md.calibration = 15.0;
  config.md.profile.capacity = 100;
  config.md.profile.batch_size = 50;
  config.labeler.long_idle = 20.0;
  return config;
}

OfficeShard::OfficeShard(std::size_t index, std::uint64_t seed,
                         ShardConfig config)
    : index_(index),
      seed_(seed),
      config_(validated(std::move(config))),
      tick_hz_(config_.system.tick_hz),
      system_(config_.streams, config_.workstations, config_.system) {
  const TickRate rate(tick_hz_);
  script_.settle = rate.to_ticks_ceil(config_.settle);
  script_.burst = rate.to_ticks_ceil(config_.burst);
  script_.away = rate.to_ticks_ceil(config_.away);
  script_.rest = rate.to_ticks_ceil(config_.rest);
  script_.cycle = script_.burst + script_.away + script_.burst + script_.rest;
  script_.round = script_.cycle * static_cast<Tick>(config_.workstations);
  script_.train_end =
      script_.settle +
      script_.round * static_cast<Tick>(config_.train_rounds);
  block_.resize(config_.block_ticks, config_.streams);
}

void OfficeShard::enable_persistence(persist::RecoveryConfig recovery,
                                     Tick checkpoint_period) {
  FADEWICH_EXPECTS(checkpoint_period >= 1);
  recovery_ = std::make_unique<persist::RecoveryManager>(std::move(recovery));
  checkpoint_period_ = checkpoint_period;
}

OfficeShard::Phase OfficeShard::phase_at(Tick tick) const {
  Phase phase;
  if (tick < script_.settle) return phase;
  const Tick u = tick - script_.settle;
  const Tick in_round = u % script_.round;
  phase.settled = false;
  phase.workstation = static_cast<std::size_t>(in_round / script_.cycle);
  phase.offset = in_round % script_.cycle;
  phase.leave_start = tick - phase.offset;
  return phase;
}

bool OfficeShard::seated(const Phase& p, std::size_t workstation) const {
  if (p.settled || workstation != p.workstation) return true;
  // The cycle owner is out (or walking) until the enter burst completes.
  return p.offset >= script_.burst + script_.away + script_.burst;
}

bool OfficeShard::bursting(const Phase& p, std::size_t stream) const {
  if (p.settled) return false;
  const std::size_t owner =
      stream * config_.workstations / config_.streams;
  if (owner != p.workstation) return false;
  const bool leave_burst = p.offset < script_.burst;
  const bool enter_burst =
      p.offset >= script_.burst + script_.away &&
      p.offset < script_.burst + script_.away + script_.burst;
  return leave_burst || enter_burst;
}

double OfficeShard::sample(Tick tick, std::size_t stream) const {
  const Phase phase = phase_at(tick);
  const double sigma = bursting(phase, stream) ? 4.0 : 0.4;
  // Stateless Box-Muller: both uniforms are pure functions of
  // (seed, tick, stream), so any tick range replays bit-identically.
  const std::uint64_t idx =
      static_cast<std::uint64_t>(tick) * config_.streams + stream;
  const double u1 = unit_open(exec::task_seed(seed_, 2 * idx));
  const double u2 = unit_open(exec::task_seed(seed_, 2 * idx + 1));
  const double normal =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  return std::round(-60.0 + sigma * normal);
}

void OfficeShard::fill_block(Tick from, Tick count) {
  block_.resize(static_cast<std::size_t>(count), config_.streams);
  if (row_source_) {
    row_source_(from, static_cast<std::size_t>(count), block_);
    return;
  }
  for (Tick i = 0; i < count; ++i) {
    double* row = block_.row(static_cast<std::size_t>(i));
    for (std::size_t s = 0; s < config_.streams; ++s) {
      row[s] = sample(from + i, s);
    }
  }
}

void OfficeShard::step_tick(Tick tick, std::size_t row) {
  const Seconds now = system_.rate().to_seconds(tick);
  const Phase phase = phase_at(tick);

  // Seated users type once a second (the KMA signal Rule 1 needs).
  const auto ticks_per_second = static_cast<Tick>(std::lround(tick_hz_));
  if (tick % ticks_per_second == 0) {
    for (std::size_t w = 0; w < config_.workstations; ++w) {
      if (seated(phase, w)) system_.record_input(w, now);
    }
  }

  if (kill_tick_ && tick == *kill_tick_) {
    kill_tick_.reset();  // one-shot: a recovered shard replays past it
    throw Error("injected shard crash at tick " + std::to_string(tick));
  }

  const auto row_span = block_.row_span(row);
  digest_.update(row_span.data(), row_span.size() * sizeof(double));
  const core::FadewichSystem::StepResult result = system_.step(row_span);
  account(tick, result);

  // Switch online at the scripted training horizon; if the labeler has
  // not yet seen two classes (it has, with the default rounds), retry at
  // each later round boundary.
  if (system_.training() && tick + 1 >= script_.train_end &&
      (tick + 1 - script_.settle) % script_.round == 0) {
    system_.finish_training();
  }

  if (recovery_ != nullptr &&
      system_.tick() % checkpoint_period_ == 0) {
    persist::Snapshot snapshot;
    snapshot.system = system_.export_state();
    snapshot.station.imputed_per_stream.assign(config_.streams, 0);
    recovery_->checkpoint(snapshot);
  }
}

void OfficeShard::account(Tick tick,
                          const core::FadewichSystem::StepResult& result) {
  const auto md = static_cast<std::uint8_t>(result.md_state);
  digest_.update(&md, sizeof(md));
  const std::int32_t label =
      result.classification ? *result.classification : -1;
  digest_.update(&label, sizeof(label));
  for (const core::Action& action : result.actions) {
    struct {
      std::int64_t tick;
      std::int32_t type;
      std::uint32_t workstation;
    } record{tick, static_cast<std::int32_t>(action.type),
             static_cast<std::uint32_t>(action.workstation)};
    digest_.update(&record, sizeof(record));

    if (action.type == core::ActionType::kAlert) {
      ++alerts_;
      continue;
    }
    // A deauthentication is on time when it hits the cycle owner between
    // the start of its leave burst and the end of its absence; anything
    // else is spurious.
    const Phase phase = phase_at(tick);
    const bool on_leave =
        !system_.training() && !phase.settled &&
        action.workstation == phase.workstation &&
        phase.offset < script_.burst + script_.away;
    if (on_leave) {
      ++deauths_;
      metrics_.deauths.inc();
      const Seconds latency =
          system_.rate().to_seconds(tick - phase.leave_start);
      metrics_.deauth_latency.observe(latency);
    } else {
      ++spurious_deauths_;
      metrics_.spurious_deauths.inc();
    }
  }
}

void OfficeShard::run_until(Tick boundary) {
  if (faulted_) return;
  while (system_.tick() < boundary) {
    const Tick from = system_.tick();
    const Tick count = std::min<Tick>(
        static_cast<Tick>(config_.block_ticks), boundary - from);
    const auto frame = arena_.frame();
    try {
      fill_block(from, count);
    } catch (const std::exception& e) {
      // A RowSource stepped past its buffered rows (a sequencing bug in
      // the driver above us) — fault the shard, never throw across the
      // fleet boundary.
      faulted_ = true;
      fault_what_ = e.what();
      return;
    }
    for (Tick i = 0; i < count; ++i) {
      try {
        step_tick(from + i, static_cast<std::size_t>(i));
      } catch (const std::exception& e) {
        faulted_ = true;
        fault_what_ = e.what();
        return;
      }
      metrics_.ticks.inc();
    }
  }
}

bool OfficeShard::restore_from_ring() {
  if (recovery_ == nullptr) return false;
  persist::RecoveryReport report;
  const std::optional<persist::Snapshot> snapshot =
      recovery_->recover(&report);
  if (!snapshot) return false;
  try {
    system_.import_state(snapshot->system);
  } catch (const Error&) {
    return false;
  }
  faulted_ = false;
  fault_what_.clear();
  ++restores_;
  return true;
}

void OfficeShard::reset_to_cold() {
  system_ = core::FadewichSystem(config_.streams, config_.workstations,
                                 config_.system);
  faulted_ = false;
  fault_what_.clear();
  ++restores_;
}

std::size_t OfficeShard::memory_bytes() const {
  return sizeof(OfficeShard) +
         block_.rows() * block_.cols() * sizeof(double) +
         arena_.bytes_reserved();
}

}  // namespace fadewich::fleet
