// The wire -> fleet bridge: gives the campus a real front door.
//
// The ingest plane (net::IngestPlane) delivers each office's share of a
// capture as a tick-ordered measurement stream; this bridge runs one
// strict CentralStation per office over that stream (the allocation-free
// ingest_ordered path), buffers the completed rows, and exposes them as
// an OfficeShard RowSource — so a shard steps over wire-decoded RSSI
// instead of its synthetic driver, while the occupancy script keeps
// supplying input events and ground-truth accounting.
//
// Contracts:
//   * bridge office i consumes plane shard i; the per-shard sink is
//     called for different offices concurrently but never for one
//     office concurrently (the plane guarantees both).
//   * capture tick t maps to shard tick t.  A tick the capture never
//     completes is filled by repeating the previous row (zeros before
//     any row) and counted in gap_rows — deterministic in the stream
//     content alone, so bridged replay stays bit-identical at any lane
//     count.
//   * rows stay buffered after a shard reads them (trim explicitly via
//     trim_before) because supervised recovery re-reads replayed tick
//     ranges; a RowSource that forgets rows breaks exact replay.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fadewich/common/time.hpp"
#include "fadewich/fleet/office_shard.hpp"
#include "fadewich/net/central_station.hpp"
#include "fadewich/net/ingest_plane.hpp"

namespace fadewich::fleet {

struct BridgeConfig {
  std::size_t offices = 1;
  /// Radios per office; streams per office = devices * (devices - 1),
  /// and bridge stream s is station stream s (stream_index order).
  std::size_t devices = 3;
  /// Per-office assembly config.  Strict (deadline 0) keeps the
  /// ordered fast path hot; max_pending only matters on corrupt input.
  net::StationConfig station;
};

class IngestBridge {
 public:
  /// Invalid configs throw fadewich::Error.
  explicit IngestBridge(BridgeConfig config);

  std::size_t offices() const { return config_.offices; }
  std::size_t streams() const {
    return config_.devices * (config_.devices - 1);
  }

  /// The plane sink feeding this bridge: shard index == office index.
  net::IngestPlane::Sink sink();

  /// Feed one office's next ordered batch (what sink() forwards to).
  void ingest(std::size_t office, std::span<const net::Measurement> batch);

  /// Declare end-of-stream: flushes each office's final assembly row.
  void finish();

  /// Ticks [0, result) have buffered rows for this office — the highest
  /// boundary its shard may run_until.
  Tick rows_ready_through(std::size_t office) const;

  /// Point `shard` at this bridge's rows for `office`.  Throws if the
  /// shard's stream count differs from streams().  The shard must only
  /// be stepped to rows_ready_through(office); reading further throws
  /// (a sequencing bug, not an input error).
  void attach(OfficeShard& shard, std::size_t office);

  /// Drop buffered rows before `tick` (after every consumer, including
  /// possible recovery replay, has moved past them).
  void trim_before(std::size_t office, Tick tick);

  const net::StationHealth& health(std::size_t office) const;
  /// Ticks synthesised by gap fill for one office.
  std::uint64_t gap_rows(std::size_t office) const;

 private:
  struct Office {
    std::unique_ptr<net::CentralStation> station;
    std::vector<double> rows;   // ready rows, stream-major per tick
    Tick base_tick = 0;         // tick of rows[0 .. streams)
    Tick next_tick = 0;         // first tick not yet buffered
    std::uint64_t gap_rows = 0;
  };

  Office& at(std::size_t office);
  const Office& at(std::size_t office) const;
  void append_row(Office& office, const net::StationRow& row);

  BridgeConfig config_;
  std::vector<Office> offices_;
};

}  // namespace fadewich::fleet
