// One office of the campus fleet: a self-contained FADEWICH pipeline
// plus the deterministic synthetic occupancy script that drives it.
//
// The shard is a cache-friendly flat block: RSSI rows are staged in one
// FlatMatrix reused block after block, per-block scratch comes from the
// shard's own ScratchArena, and all accumulated outputs are a handful of
// counters plus a CRC-32 digest — so stepping a shard touches one
// contiguous working set and performs no steady-state allocations.
//
// Determinism is the load-bearing property.  The driver is *stateless
// per tick*: every RSSI sample and input event is a pure function of
// (shard seed, tick index), drawn through splitmix mixing rather than a
// sequential generator.  Consequences:
//   * shard outputs never depend on which pool thread ran the shard or
//     how blocks were sized — a fleet week is bit-identical at any
//     FADEWICH_THREADS;
//   * a shard restored from a snapshot replays the exact tick range it
//     lost, so supervised recovery is exact and local to the shard;
//   * shard i's output stream is independent of how many other offices
//     the fleet holds (its seed derives from (fleet seed, i) alone).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "fadewich/common/crc32.hpp"
#include "fadewich/common/flat_matrix.hpp"
#include "fadewich/common/scratch_arena.hpp"
#include "fadewich/common/time.hpp"
#include "fadewich/core/system.hpp"
#include "fadewich/obs/obs.hpp"
#include "fadewich/persist/recovery.hpp"

namespace fadewich::fleet {

/// Per-office template.  The defaults mirror the proven synthetic
/// harness office (4 streams, 2 workstations, short MD windows) so a
/// shard trains and goes online in a few hundred simulated seconds.
struct ShardConfig {
  std::size_t streams = 4;
  std::size_t workstations = 2;
  std::size_t block_ticks = 64;  // rows staged per run_until block, >= 1
  core::SystemConfig system;     // defaulted by default_shard_system()

  // Occupancy script, in seconds.  One cycle per workstation:
  // leave burst -> away -> enter burst -> seated typing.
  double settle = 20.0;  // initial all-seated typing (covers calibration)
  double burst = 6.0;    // movement burst on a leave or enter
  double away = 25.0;    // absence after a leave (> labeler long_idle)
  double rest = 20.0;    // seated typing after an enter
  std::size_t train_rounds = 4;  // full cycles before finish_training()
};

/// The system configuration the default ShardConfig assumes: 5 Hz ticks,
/// 2 s MD windows, 15 s calibration, a small profile, 20 s long-idle.
core::SystemConfig default_shard_system();

/// Per-office metric handles; minted by the fleet (with office labels)
/// or left default (no-op) for label-free shards.
struct ShardMetrics {
  obs::Counter ticks;
  obs::Counter deauths;
  obs::Counter spurious_deauths;
  obs::Histogram deauth_latency;  // seconds from leave start to deauth
};

class OfficeShard {
 public:
  /// `seed` should come from exec::task_seed(fleet_seed, index) so shard
  /// streams are decorrelated and independent of the fleet size.
  OfficeShard(std::size_t index, std::uint64_t seed, ShardConfig config);

  std::size_t index() const { return index_; }
  std::size_t streams() const { return config_.streams; }
  Tick tick() const { return system_.tick(); }
  bool training() const { return system_.training(); }

  void set_metrics(ShardMetrics metrics) { metrics_ = metrics; }

  /// External RSSI driver — the ingestion bridge's hook.  When set,
  /// fill_block() asks the source for each staged block instead of
  /// synthesising samples: source(from, count, block) must write
  /// `count` rows of `streams` values for ticks [from, from + count).
  /// Only the RSSI synthesis is replaced — the occupancy script still
  /// supplies input events and ground-truth accounting.  The source
  /// must be a deterministic function of the tick range (like sample())
  /// or snapshot recovery loses its exact-replay property.
  using RowSource = std::function<void(Tick from, std::size_t count,
                                       common::FlatMatrix& block)>;
  void set_row_source(RowSource source) {
    row_source_ = std::move(source);
  }

  /// Attach a snapshot ring: the shard checkpoints every
  /// `checkpoint_period` ticks and can restore_from_ring() after a
  /// fault.  Must be called before the first run_until().
  void enable_persistence(persist::RecoveryConfig recovery,
                          Tick checkpoint_period);

  /// Advance the pipeline to `boundary` ticks (no-op when already
  /// there).  On an internal or injected fault the shard stops at the
  /// failing tick with faulted() set; it never throws across this
  /// boundary — the fleet decides whether to recover or retire it.
  void run_until(Tick boundary);

  bool faulted() const { return faulted_; }
  const std::string& fault_what() const { return fault_what_; }

  /// Arm a one-shot injected crash: the step at `tick` throws.  The
  /// trigger disarms once fired, so a recovered shard replays past it.
  void kill_at(Tick tick) { kill_tick_ = tick; }

  /// Restore the newest valid snapshot; false on a cold ring.  Clears
  /// the fault flag on success.  The pipeline resumes from the snapshot
  /// tick; the stateless driver replays the lost range bit-identically.
  bool restore_from_ring();

  /// Degraded recovery of last resort: rebuild the pipeline from tick 0.
  /// Deterministic (the driver is stateless), so even a cold-start
  /// recovery converges back to a reproducible stream.
  void reset_to_cold();

  // --- Accumulated outputs -------------------------------------------
  /// CRC-32 over every RSSI row, MD state, action, and classification
  /// the shard produced, in tick order.  Two shards with equal digests
  /// ran bit-identical weeks.
  std::uint32_t digest() const { return digest_.value(); }
  std::uint64_t deauths() const { return deauths_; }
  std::uint64_t spurious_deauths() const { return spurious_deauths_; }
  std::uint64_t alerts() const { return alerts_; }
  std::uint64_t restores() const { return restores_; }

  /// Bytes of shard-owned flat state: the staged block, the scratch
  /// arena's reservation, and the shard object itself.  (The pipeline's
  /// internal model state is excluded — this is the fleet-layer
  /// footprint the bench trends as bytes-per-office.)
  std::size_t memory_bytes() const;

 private:
  double sample(Tick tick, std::size_t stream) const;
  void fill_block(Tick from, Tick count);
  void step_tick(Tick tick, std::size_t row);
  void account(Tick tick, const core::FadewichSystem::StepResult& result);

  // Script geometry, all in ticks.
  struct Script {
    Tick settle = 0;
    Tick burst = 0;
    Tick away = 0;
    Tick rest = 0;
    Tick cycle = 0;        // burst + away + burst + rest
    Tick round = 0;        // cycle * workstations
    Tick train_end = 0;    // settle + train_rounds * round
  };
  /// Which workstation (if any) is mid-cycle at `tick`, and where.
  struct Phase {
    bool settled = true;            // settle prelude: everyone seated
    std::size_t workstation = 0;    // cycle owner
    Tick offset = 0;                // ticks into the owner's cycle
    Tick leave_start = 0;           // absolute tick the leave burst began
  };
  Phase phase_at(Tick tick) const;
  bool seated(const Phase& p, std::size_t workstation) const;
  bool bursting(const Phase& p, std::size_t stream) const;

  std::size_t index_;
  std::uint64_t seed_;
  ShardConfig config_;
  Script script_;
  double tick_hz_;

  core::FadewichSystem system_;
  RowSource row_source_;          // external RSSI driver, else sample()
  common::FlatMatrix block_;      // block_ticks x streams staging rows
  common::ScratchArena arena_;
  ShardMetrics metrics_;

  std::unique_ptr<persist::RecoveryManager> recovery_;
  Tick checkpoint_period_ = 0;

  std::optional<Tick> kill_tick_;
  bool faulted_ = false;
  std::string fault_what_;

  Crc32 digest_;
  std::uint64_t deauths_ = 0;
  std::uint64_t spurious_deauths_ = 0;
  std::uint64_t alerts_ = 0;
  std::uint64_t restores_ = 0;
};

}  // namespace fadewich::fleet
