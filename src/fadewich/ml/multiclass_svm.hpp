// One-vs-one multiclass SVM with majority voting, plus built-in feature
// standardisation.  This is the classifier RE uses to map a variation
// window sample to a label w0 (entered) / w1..wk (left workstation i).
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "fadewich/ml/dataset.hpp"
#include "fadewich/ml/scaler.hpp"
#include "fadewich/ml/svm.hpp"

namespace fadewich::exec {
class ThreadPool;
}  // namespace fadewich::exec

namespace fadewich::ml {

/// The trained parameters of a MulticlassSvm for persistence: the class
/// list, the fitted scaler, and every pairwise machine keyed by its
/// (first, second) class pair.
struct MulticlassSvmState {
  struct PairwiseMachine {
    int first_class = 0;
    int second_class = 0;
    BinarySvmState svm;
  };
  std::vector<int> classes;
  std::vector<double> scaler_means;
  std::vector<double> scaler_scales;
  std::vector<PairwiseMachine> machines;
};

class MulticlassSvm {
 public:
  explicit MulticlassSvm(SvmConfig config = {});

  /// Train on the dataset.  Labels may be any non-negative integers; at
  /// least one sample is required.  With a single class present, predict()
  /// always returns that class (no pairwise machines are trained).
  ///
  /// The pairwise binary problems are independent SMO solves; they train
  /// concurrently on `pool` (the process-wide pool when nullptr).  Each
  /// machine is seeded from the config alone, so the trained model is
  /// identical at any thread count.
  void train(const Dataset& data, exec::ThreadPool* pool = nullptr);

  /// Predict the class of a sample.  Requires trained.  The single-query
  /// special case of predict_block, so both paths agree bit-for-bit.
  int predict(const std::vector<double>& x) const;

  /// Predict every sample in one pass: out[i] = class of xs[i].  Each
  /// pairwise machine's support-vector matrix is streamed once per batch
  /// (via BinarySvm::decision_block) instead of once per query; scratch
  /// comes from the calling thread's arena, so steady-state batches do
  /// not allocate.  Requires trained and out.size() == xs.size().
  void predict_block(const std::vector<std::vector<double>>& xs,
                     std::span<int> out) const;

  /// As above, with the queries given as one packed row-major span of
  /// `count` rows of feature width (e.g. scratch-arena or FlatMatrix
  /// storage), skipping the packing copy.
  void predict_block(std::span<const double> xs, std::size_t count,
                     std::span<int> out) const;

  /// Accuracy over a test set.  Requires trained and non-empty test set.
  double accuracy(const Dataset& test) const;

  bool trained() const { return trained_; }
  const std::vector<int>& classes() const { return classes_; }

  /// Trained parameters for persistence.  Requires trained.
  MulticlassSvmState export_state() const;

  /// Restore a trained model from persisted state.  Throws
  /// fadewich::Error on inconsistent state (no classes, wrong pairwise
  /// machine set, unknown class in a pair) so corrupt snapshots fail
  /// loudly instead of voting with a half-restored model.
  void import_state(MulticlassSvmState state);

 private:
  void predict_rows(const double* xs, std::size_t stride,
                    std::size_t count, int* out) const;

  SvmConfig config_;
  bool trained_ = false;
  std::vector<int> classes_;
  StandardScaler scaler_;
  // Pairwise machine per class pair (a, b) with a < b; +1 means class a.
  std::map<std::pair<int, int>, BinarySvm> machines_;
};

}  // namespace fadewich::ml
