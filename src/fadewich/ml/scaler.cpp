#include "fadewich/ml/scaler.hpp"

#include <cmath>
#include <string>
#include <utility>

#include "fadewich/common/error.hpp"

namespace fadewich::ml {

void StandardScaler::fit(const std::vector<std::vector<double>>& features) {
  FADEWICH_EXPECTS(!features.empty());
  const std::size_t dim = features[0].size();
  means_.assign(dim, 0.0);
  scales_.assign(dim, 1.0);

  const double n = static_cast<double>(features.size());
  for (const auto& row : features) {
    FADEWICH_EXPECTS(row.size() == dim);
    for (std::size_t j = 0; j < dim; ++j) means_[j] += row[j];
  }
  for (std::size_t j = 0; j < dim; ++j) means_[j] /= n;

  std::vector<double> var(dim, 0.0);
  for (const auto& row : features) {
    for (std::size_t j = 0; j < dim; ++j) {
      const double d = row[j] - means_[j];
      var[j] += d * d;
    }
  }
  for (std::size_t j = 0; j < dim; ++j) {
    const double sd = std::sqrt(var[j] / n);
    scales_[j] = sd > 0.0 ? sd : 1.0;
  }
}

void StandardScaler::restore(std::vector<double> means,
                             std::vector<double> scales) {
  if (means.empty() || means.size() != scales.size()) {
    throw Error("scaler state inconsistent: " + std::to_string(means.size()) +
                " means vs " + std::to_string(scales.size()) + " scales");
  }
  for (double s : scales) {
    if (!(s > 0.0)) throw Error("scaler state has non-positive scale");
  }
  means_ = std::move(means);
  scales_ = std::move(scales);
}

std::vector<double> StandardScaler::transform(
    const std::vector<double>& x) const {
  FADEWICH_EXPECTS(fitted());
  FADEWICH_EXPECTS(x.size() == means_.size());
  std::vector<double> out(x.size());
  for (std::size_t j = 0; j < x.size(); ++j) {
    out[j] = (x[j] - means_[j]) / scales_[j];
  }
  return out;
}

std::vector<std::vector<double>> StandardScaler::transform(
    const std::vector<std::vector<double>>& features) const {
  std::vector<std::vector<double>> out;
  out.reserve(features.size());
  for (const auto& row : features) out.push_back(transform(row));
  return out;
}

void StandardScaler::transform_rows(const double* xs, std::size_t stride,
                                    std::size_t count, double* out) const {
  FADEWICH_EXPECTS(fitted());
  const std::size_t dim = means_.size();
  for (std::size_t r = 0; r < count; ++r) {
    const double* src = xs + r * stride;
    double* dst = out + r * dim;
    for (std::size_t j = 0; j < dim; ++j) {
      dst[j] = (src[j] - means_[j]) / scales_[j];
    }
  }
}

void StandardScaler::transform_block(
    const std::vector<std::vector<double>>& features,
    common::FlatMatrix& out) const {
  FADEWICH_EXPECTS(fitted());
  out.resize(features.size(), means_.size());
  for (std::size_t r = 0; r < features.size(); ++r) {
    FADEWICH_EXPECTS(features[r].size() == means_.size());
    transform_rows(features[r].data(), means_.size(), 1, out.row(r));
  }
}

}  // namespace fadewich::ml
