#include "fadewich/ml/scaler.hpp"

#include <cmath>

#include "fadewich/common/error.hpp"

namespace fadewich::ml {

void StandardScaler::fit(const std::vector<std::vector<double>>& features) {
  FADEWICH_EXPECTS(!features.empty());
  const std::size_t dim = features[0].size();
  means_.assign(dim, 0.0);
  scales_.assign(dim, 1.0);

  const double n = static_cast<double>(features.size());
  for (const auto& row : features) {
    FADEWICH_EXPECTS(row.size() == dim);
    for (std::size_t j = 0; j < dim; ++j) means_[j] += row[j];
  }
  for (std::size_t j = 0; j < dim; ++j) means_[j] /= n;

  std::vector<double> var(dim, 0.0);
  for (const auto& row : features) {
    for (std::size_t j = 0; j < dim; ++j) {
      const double d = row[j] - means_[j];
      var[j] += d * d;
    }
  }
  for (std::size_t j = 0; j < dim; ++j) {
    const double sd = std::sqrt(var[j] / n);
    scales_[j] = sd > 0.0 ? sd : 1.0;
  }
}

std::vector<double> StandardScaler::transform(
    const std::vector<double>& x) const {
  FADEWICH_EXPECTS(fitted());
  FADEWICH_EXPECTS(x.size() == means_.size());
  std::vector<double> out(x.size());
  for (std::size_t j = 0; j < x.size(); ++j) {
    out[j] = (x[j] - means_[j]) / scales_[j];
  }
  return out;
}

std::vector<std::vector<double>> StandardScaler::transform(
    const std::vector<std::vector<double>>& features) const {
  std::vector<std::vector<double>> out;
  out.reserve(features.size());
  for (const auto& row : features) out.push_back(transform(row));
  return out;
}

}  // namespace fadewich::ml
