// Relative mutual information between a scalar feature and a class label:
//
//   RMI(x, y) = (H(x) - H(x|y)) / H(x)
//
// with the feature quantised into 256 linearly spaced bins between its
// minimum and maximum — exactly the Appendix A procedure behind Fig. 12
// and Table V.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fadewich::ml {

/// Marginal entropy of the quantised feature (natural log).  Requires
/// non-empty input.
double quantized_entropy(std::span<const double> values, std::size_t bins);

/// Conditional entropy H(x|y) of the quantised feature given labels.
/// Requires matching non-empty inputs.
double quantized_conditional_entropy(std::span<const double> values,
                                     std::span<const int> labels,
                                     std::size_t bins);

/// Relative mutual information; 0 when the marginal entropy is 0 (a
/// constant feature carries no information).  Requires matching non-empty
/// inputs and bins >= 1.
double relative_mutual_information(std::span<const double> values,
                                   std::span<const int> labels,
                                   std::size_t bins = 256);

}  // namespace fadewich::ml
