// Per-feature standardisation (zero mean, unit variance), fitted on
// training data and applied to both training and test samples so the SVM
// sees comparable feature scales.
#pragma once

#include <cstddef>
#include <vector>

#include "fadewich/common/flat_matrix.hpp"
#include "fadewich/ml/dataset.hpp"

namespace fadewich::ml {

class StandardScaler {
 public:
  /// Learn per-feature mean and standard deviation.  Features with zero
  /// variance are passed through unscaled (divisor 1).  Requires a
  /// non-empty dataset.
  void fit(const std::vector<std::vector<double>>& features);

  /// Standardise one sample.  Requires fit() and a matching width.
  std::vector<double> transform(const std::vector<double>& x) const;

  /// Standardise a whole matrix.
  std::vector<std::vector<double>> transform(
      const std::vector<std::vector<double>>& features) const;

  /// Standardise a whole matrix into flat row-major storage; `out` is
  /// resized to features.size() x dim.  Element-for-element the same
  /// arithmetic as transform(), just without the per-row allocations.
  void transform_block(const std::vector<std::vector<double>>& features,
                       common::FlatMatrix& out) const;

  /// Standardise `count` packed rows (row stride `stride`, scaler width)
  /// into `out`, which must hold count * dim doubles.  The raw-pointer
  /// core the batched predictors feed from scratch-arena storage.
  void transform_rows(const double* xs, std::size_t stride,
                      std::size_t count, double* out) const;

  bool fitted() const { return !means_.empty(); }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& scales() const { return scales_; }

  /// Restore a previously fitted scaler from persisted state.  Throws
  /// fadewich::Error on inconsistent state (size mismatch, empty, or
  /// non-positive scales) so corrupt snapshots fail loudly.
  void restore(std::vector<double> means, std::vector<double> scales);

 private:
  std::vector<double> means_;
  std::vector<double> scales_;
};

}  // namespace fadewich::ml
