// Per-feature standardisation (zero mean, unit variance), fitted on
// training data and applied to both training and test samples so the SVM
// sees comparable feature scales.
#pragma once

#include <vector>

#include "fadewich/ml/dataset.hpp"

namespace fadewich::ml {

class StandardScaler {
 public:
  /// Learn per-feature mean and standard deviation.  Features with zero
  /// variance are passed through unscaled (divisor 1).  Requires a
  /// non-empty dataset.
  void fit(const std::vector<std::vector<double>>& features);

  /// Standardise one sample.  Requires fit() and a matching width.
  std::vector<double> transform(const std::vector<double>& x) const;

  /// Standardise a whole matrix.
  std::vector<std::vector<double>> transform(
      const std::vector<std::vector<double>>& features) const;

  bool fitted() const { return !means_.empty(); }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& scales() const { return scales_; }

  /// Restore a previously fitted scaler from persisted state.  Throws
  /// fadewich::Error on inconsistent state (size mismatch, empty, or
  /// non-positive scales) so corrupt snapshots fail loudly.
  void restore(std::vector<double> means, std::vector<double> scales);

 private:
  std::vector<double> means_;
  std::vector<double> scales_;
};

}  // namespace fadewich::ml
