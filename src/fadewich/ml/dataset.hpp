// A labeled dataset: row-major feature matrix plus integer class labels.
#pragma once

#include <cstddef>
#include <vector>

#include "fadewich/common/error.hpp"

namespace fadewich::ml {

struct Dataset {
  std::vector<std::vector<double>> features;  // features[i] is sample i
  std::vector<int> labels;                    // labels[i] in [0, n_classes)

  std::size_t size() const { return features.size(); }
  bool empty() const { return features.empty(); }

  std::size_t feature_count() const {
    FADEWICH_EXPECTS(!features.empty());
    return features[0].size();
  }

  void add(std::vector<double> x, int y) {
    FADEWICH_EXPECTS(features.empty() || x.size() == features[0].size());
    features.push_back(std::move(x));
    labels.push_back(y);
  }

  /// Dataset restricted to the given sample indices.
  Dataset subset(const std::vector<std::size_t>& indices) const {
    Dataset out;
    out.features.reserve(indices.size());
    out.labels.reserve(indices.size());
    for (std::size_t i : indices) {
      FADEWICH_EXPECTS(i < size());
      out.features.push_back(features[i]);
      out.labels.push_back(labels[i]);
    }
    return out;
  }

  /// Number of distinct classes, assuming labels are 0-based and dense is
  /// NOT required: returns 1 + max(label).  Requires non-empty.
  int max_label_plus_one() const {
    FADEWICH_EXPECTS(!labels.empty());
    int mx = 0;
    for (int y : labels) {
      FADEWICH_EXPECTS(y >= 0);
      if (y > mx) mx = y;
    }
    return mx + 1;
  }
};

}  // namespace fadewich::ml
