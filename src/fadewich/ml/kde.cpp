#include "fadewich/ml/kde.hpp"

#include <algorithm>
#include <cmath>

#include "fadewich/common/error.hpp"
#include "fadewich/common/simd_kernels.hpp"
#include "fadewich/stats/descriptive.hpp"

namespace fadewich::ml {

namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014327;
constexpr double kInvSqrt2 = 0.7071067811865476;
// Queries evaluated per sample-window scan.  Small enough that the
// accumulators stay in registers, large enough to amortise the binary
// search and let the inner loop vectorise.
constexpr std::size_t kQueryBlock = 8;

// Shared bisection core: invert the pruned CDF inside [lo, hi].
double bisect_percentile(std::span<const double> sorted, double bandwidth,
                         double p, double lo, double hi, int max_iterations,
                         double rel_tol) {
  for (int i = 0;
       i < max_iterations && hi - lo > rel_tol * (1.0 + std::abs(hi));
       ++i) {
    const double mid = 0.5 * (lo + hi);
    if (kde_cdf_sorted(sorted, bandwidth, mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double kde_pdf_sorted(std::span<const double> sorted, double bandwidth,
                      double x) {
  const double reach = kKdeKernelReach * bandwidth;
  const auto lo_it =
      std::lower_bound(sorted.begin(), sorted.end(), x - reach);
  const auto hi_it =
      std::upper_bound(sorted.begin(), sorted.end(), x + reach);
  double acc = 0.0;
  for (auto it = lo_it; it != hi_it; ++it) {
    const double u = (x - *it) / bandwidth;
    acc += std::exp(-0.5 * u * u);
  }
  return acc * kInvSqrt2Pi /
         (bandwidth * static_cast<double>(sorted.size()));
}

double kde_cdf_sorted(std::span<const double> sorted, double bandwidth,
                      double x) {
  // Samples below x - reach contribute 1; above x + reach contribute 0;
  // only the middle needs erf.
  const double reach = kKdeKernelReach * bandwidth;
  const auto lo_it =
      std::lower_bound(sorted.begin(), sorted.end(), x - reach);
  const auto hi_it =
      std::upper_bound(sorted.begin(), sorted.end(), x + reach);
  double acc = static_cast<double>(lo_it - sorted.begin());
  for (auto it = lo_it; it != hi_it; ++it) {
    acc += 0.5 * (1.0 + std::erf((x - *it) / bandwidth * kInvSqrt2));
  }
  return acc / static_cast<double>(sorted.size());
}

void kde_pdf_block_sorted(std::span<const double> sorted, double bandwidth,
                          std::span<const double> xs, std::span<double> out,
                          const simd::KernelTable& kernels) {
  FADEWICH_EXPECTS(out.size() == xs.size());
  const double reach = kKdeKernelReach * bandwidth;
  const double inv_bw = 1.0 / bandwidth;
  const double norm =
      kInvSqrt2Pi / (bandwidth * static_cast<double>(sorted.size()));
  for (std::size_t base = 0; base < xs.size(); base += kQueryBlock) {
    const std::size_t n = std::min(kQueryBlock, xs.size() - base);
    double mn = xs[base];
    double mx = xs[base];
    for (std::size_t j = 1; j < n; ++j) {
      mn = std::min(mn, xs[base + j]);
      mx = std::max(mx, xs[base + j]);
    }
    // One sample-window scan serves the whole block; samples outside a
    // particular query's own window contribute < exp(-32), invisible at
    // the 1e-12 equivalence budget.
    const auto lo_it =
        std::lower_bound(sorted.begin(), sorted.end(), mn - reach);
    const auto hi_it =
        std::upper_bound(sorted.begin(), sorted.end(), mx + reach);
    double acc[kQueryBlock] = {};
    kernels.kde_expsum_block(sorted.data() + (lo_it - sorted.begin()),
                             static_cast<std::size_t>(hi_it - lo_it),
                             xs.data() + base, n, inv_bw, acc);
    for (std::size_t j = 0; j < n; ++j) out[base + j] = acc[j] * norm;
  }
}

void kde_pdf_block_sorted(std::span<const double> sorted, double bandwidth,
                          std::span<const double> xs,
                          std::span<double> out) {
  kde_pdf_block_sorted(sorted, bandwidth, xs, out, simd::active_kernels());
}

void kde_cdf_block_sorted(std::span<const double> sorted, double bandwidth,
                          std::span<const double> xs, std::span<double> out,
                          const simd::KernelTable& kernels) {
  FADEWICH_EXPECTS(out.size() == xs.size());
  const double reach = kKdeKernelReach * bandwidth;
  const double inv_bw = 1.0 / bandwidth;
  const double inv_n = 1.0 / static_cast<double>(sorted.size());
  for (std::size_t base = 0; base < xs.size(); base += kQueryBlock) {
    const std::size_t n = std::min(kQueryBlock, xs.size() - base);
    double mn = xs[base];
    double mx = xs[base];
    for (std::size_t j = 1; j < n; ++j) {
      mn = std::min(mn, xs[base + j]);
      mx = std::max(mx, xs[base + j]);
    }
    const auto lo_it =
        std::lower_bound(sorted.begin(), sorted.end(), mn - reach);
    const auto hi_it =
        std::upper_bound(sorted.begin(), sorted.end(), mx + reach);
    // Every sample below the block window sits 8 bandwidths under every
    // query in the block (x_j >= mn), so it contributes exactly 1.
    const double below = static_cast<double>(lo_it - sorted.begin());
    double acc[kQueryBlock];
    for (std::size_t j = 0; j < n; ++j) acc[j] = below;
    kernels.kde_erfsum_block(sorted.data() + (lo_it - sorted.begin()),
                             static_cast<std::size_t>(hi_it - lo_it),
                             xs.data() + base, n, inv_bw, acc);
    for (std::size_t j = 0; j < n; ++j) out[base + j] = acc[j] * inv_n;
  }
}

void kde_cdf_block_sorted(std::span<const double> sorted, double bandwidth,
                          std::span<const double> xs,
                          std::span<double> out) {
  kde_cdf_block_sorted(sorted, bandwidth, xs, out, simd::active_kernels());
}

double kde_percentile_sorted(std::span<const double> sorted,
                             double bandwidth, double p, int max_iterations,
                             double rel_tol) {
  FADEWICH_EXPECTS(!sorted.empty());
  FADEWICH_EXPECTS(p > 0.0 && p < 1.0);
  const double lo = sorted.front() - kKdeKernelReach * bandwidth;
  const double hi = sorted.back() + kKdeKernelReach * bandwidth;
  return bisect_percentile(sorted, bandwidth, p, lo, hi, max_iterations,
                           rel_tol);
}

GaussianKde::GaussianKde(std::span<const double> samples)
    : GaussianKde(samples, silverman_bandwidth(samples)) {}

GaussianKde::GaussianKde(std::span<const double> samples, double bandwidth)
    : samples_(samples.begin(), samples.end()), bandwidth_(bandwidth) {
  FADEWICH_EXPECTS(!samples_.empty());
  FADEWICH_EXPECTS(bandwidth_ > 0.0);
  std::sort(samples_.begin(), samples_.end());
}

double GaussianKde::silverman_bandwidth(std::span<const double> samples) {
  FADEWICH_EXPECTS(!samples.empty());
  const double n = static_cast<double>(samples.size());
  double sigma = samples.size() >= 2
                     ? std::sqrt(stats::sample_variance(samples))
                     : 0.0;
  // Constant samples would give zero bandwidth; floor keeps the KDE a
  // proper (if narrow) density.
  sigma = std::max(sigma, 1e-6);
  return 1.06 * sigma * std::pow(n, -0.2);
}

double GaussianKde::pdf(double x) const {
  double acc = 0.0;
  for (double s : samples_) {
    const double u = (x - s) / bandwidth_;
    acc += std::exp(-0.5 * u * u);
  }
  return acc * kInvSqrt2Pi /
         (bandwidth_ * static_cast<double>(samples_.size()));
}

double GaussianKde::cdf(double x) const {
  double acc = 0.0;
  for (double s : samples_) {
    acc += 0.5 * (1.0 + std::erf((x - s) / bandwidth_ * kInvSqrt2));
  }
  return acc / static_cast<double>(samples_.size());
}

void GaussianKde::pdf_block(std::span<const double> xs,
                            std::span<double> out) const {
  kde_pdf_block_sorted(samples_, bandwidth_, xs, out);
}

void GaussianKde::cdf_block(std::span<const double> xs,
                            std::span<double> out) const {
  kde_cdf_block_sorted(samples_, bandwidth_, xs, out);
}

double GaussianKde::percentile(double p) const {
  FADEWICH_EXPECTS(p > 0.0 && p < 1.0);
  // The p-quantile of a Gaussian mixture lies within ~8 bandwidths of the
  // cached sample extremes for any p of practical interest; extend until
  // the bracket truly contains p (handles extreme p values).
  double lo = min_sample() - kKdeKernelReach * bandwidth_;
  double hi = max_sample() + kKdeKernelReach * bandwidth_;
  while (kde_cdf_sorted(samples_, bandwidth_, lo) > p) {
    lo -= kKdeKernelReach * bandwidth_;
  }
  while (kde_cdf_sorted(samples_, bandwidth_, hi) < p) {
    hi += kKdeKernelReach * bandwidth_;
  }
  return bisect_percentile(samples_, bandwidth_, p, lo, hi, 200, 1e-12);
}

}  // namespace fadewich::ml
