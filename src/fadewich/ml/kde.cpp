#include "fadewich/ml/kde.hpp"

#include <algorithm>
#include <cmath>

#include "fadewich/common/error.hpp"
#include "fadewich/stats/descriptive.hpp"

namespace fadewich::ml {

namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014327;
constexpr double kInvSqrt2 = 0.7071067811865476;
}  // namespace

GaussianKde::GaussianKde(std::span<const double> samples)
    : GaussianKde(samples, silverman_bandwidth(samples)) {}

GaussianKde::GaussianKde(std::span<const double> samples, double bandwidth)
    : samples_(samples.begin(), samples.end()), bandwidth_(bandwidth) {
  FADEWICH_EXPECTS(!samples_.empty());
  FADEWICH_EXPECTS(bandwidth_ > 0.0);
}

double GaussianKde::silverman_bandwidth(std::span<const double> samples) {
  FADEWICH_EXPECTS(!samples.empty());
  const double n = static_cast<double>(samples.size());
  double sigma = samples.size() >= 2
                     ? std::sqrt(stats::sample_variance(samples))
                     : 0.0;
  // Constant samples would give zero bandwidth; floor keeps the KDE a
  // proper (if narrow) density.
  sigma = std::max(sigma, 1e-6);
  return 1.06 * sigma * std::pow(n, -0.2);
}

double GaussianKde::pdf(double x) const {
  double acc = 0.0;
  for (double s : samples_) {
    const double u = (x - s) / bandwidth_;
    acc += std::exp(-0.5 * u * u);
  }
  return acc * kInvSqrt2Pi /
         (bandwidth_ * static_cast<double>(samples_.size()));
}

double GaussianKde::cdf(double x) const {
  double acc = 0.0;
  for (double s : samples_) {
    acc += 0.5 * (1.0 + std::erf((x - s) / bandwidth_ * kInvSqrt2));
  }
  return acc / static_cast<double>(samples_.size());
}

double GaussianKde::percentile(double p) const {
  FADEWICH_EXPECTS(p > 0.0 && p < 1.0);
  // The p-quantile of a Gaussian mixture lies within ~8 bandwidths of the
  // sample extremes for any p of practical interest.
  double lo = *std::min_element(samples_.begin(), samples_.end()) -
              8.0 * bandwidth_;
  double hi = *std::max_element(samples_.begin(), samples_.end()) +
              8.0 * bandwidth_;
  // Extend until the bracket truly contains p (handles extreme p values).
  while (cdf(lo) > p) lo -= 8.0 * bandwidth_;
  while (cdf(hi) < p) hi += 8.0 * bandwidth_;
  for (int i = 0; i < 200 && hi - lo > 1e-12 * (1.0 + std::abs(hi)); ++i) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace fadewich::ml
