// Soft-margin binary SVM trained with Sequential Minimal Optimization.
//
// RE (Section IV-D3) trains an SVM on the labeled variation-window samples.
// The implementation is a standard simplified-SMO dual solver supporting
// linear and RBF kernels; with tens-to-hundreds of samples and a few
// hundred features (the paper's regime: <=130 samples, 3 features per
// stream x m(m-1) streams) it converges in milliseconds.
//
// Layout: support vectors live in one row-major common::FlatMatrix so the
// kernel expansion streams them linearly.  decision_block() evaluates a
// whole batch of queries per pass over the support-vector matrix (queries
// blocked in groups of eight, support-vector-major inner loops), which is
// what MulticlassSvm, RadioEnvironment, and cross-validation call; the
// scalar decision() is the one-row special case of the same code path, so
// batched and scalar results are bit-identical.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "fadewich/common/flat_matrix.hpp"
#include "fadewich/common/rng.hpp"

namespace fadewich::ml {

enum class KernelType { kLinear, kRbf };

struct SvmConfig {
  KernelType kernel = KernelType::kLinear;
  double c = 1.0;            // soft-margin penalty, > 0
  double rbf_gamma = 0.1;    // RBF kernel width, > 0 (ignored for linear)
  double tolerance = 1e-3;   // KKT violation tolerance
  std::size_t max_passes = 20;    // passes with no alpha change before stop
  std::size_t max_iterations = 20000;  // hard cap on outer iterations
  std::uint64_t seed = 1;    // SMO partner-selection randomisation
};

/// The trained parameters of a BinarySvm, exposed for persistence: the
/// kernel expansion is fully determined by the support vectors, their
/// signed dual weights, and the bias.  Kept in the nested layout the
/// snapshot format serialises; the machine converts to/from its flat
/// layout at the import/export boundary.
struct BinarySvmState {
  std::vector<std::vector<double>> support_x;
  std::vector<double> support_alpha_y;  // alpha_i * y_i per support vector
  double bias = 0.0;
};

/// Binary SVM.  Labels are -1 / +1.
class BinarySvm {
 public:
  explicit BinarySvm(SvmConfig config = {});

  /// Train on the given samples.  `labels[i]` must be -1 or +1, both
  /// classes must be present, and all rows must share one width.
  void train(const std::vector<std::vector<double>>& features,
             const std::vector<int>& labels);

  /// Signed decision value w.x + b (kernel expansion).  Requires trained.
  double decision(const std::vector<double>& x) const;

  /// Batched decision values: out[i] = decision on xs.row(i).  One pass
  /// over the support-vector matrix serves the whole batch, so per-query
  /// memory traffic shrinks by the batch size.  Bit-identical to calling
  /// decision() per row.  Requires trained and out.size() == xs.rows().
  void decision_block(const common::FlatMatrix& xs,
                      std::span<double> out) const;

  /// As above, with the queries given as one packed row-major span of
  /// `count` rows of support-vector width (e.g. scratch-arena storage).
  void decision_block(std::span<const double> xs, std::size_t count,
                      std::span<double> out) const;

  /// Predicted label: +1 if decision >= 0 else -1.  Requires trained.
  int predict(const std::vector<double>& x) const;

  bool trained() const { return trained_; }

  /// Number of support vectors (alpha > 0).  Requires trained.
  std::size_t support_vector_count() const;

  const SvmConfig& config() const { return config_; }

  /// Trained parameters for persistence.  Requires trained.
  BinarySvmState export_state() const;

  /// Restore a trained machine from persisted state.  Throws
  /// fadewich::Error on inconsistent state (empty expansion, mismatched
  /// row widths or weight count) so corrupt snapshots fail loudly.
  void import_state(BinarySvmState state);

 private:
  double kernel(std::span<const double> a, std::span<const double> b) const;
  void decision_rows(const double* xs, std::size_t stride,
                     std::size_t count, double* out) const;

  SvmConfig config_;
  bool trained_ = false;
  common::FlatMatrix support_x_;         // one support vector per row
  std::vector<double> support_alpha_y_;  // alpha_i * y_i per support vector
  double bias_ = 0.0;
};

}  // namespace fadewich::ml
