#include "fadewich/ml/metrics.hpp"

#include <cmath>

#include "fadewich/common/error.hpp"
#include "fadewich/stats/descriptive.hpp"

namespace fadewich::ml {

double DetectionCounts::precision() const {
  const std::size_t denom = true_positives + false_positives;
  if (denom == 0) return 0.0;
  return static_cast<double>(true_positives) / static_cast<double>(denom);
}

double DetectionCounts::recall() const {
  const std::size_t denom = true_positives + false_negatives;
  if (denom == 0) return 0.0;
  return static_cast<double>(true_positives) / static_cast<double>(denom);
}

double DetectionCounts::f_measure() const {
  const double p = precision();
  const double r = recall();
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

ConfusionMatrix::ConfusionMatrix(std::size_t n_classes)
    : counts_(n_classes, std::vector<std::size_t>(n_classes, 0)) {
  FADEWICH_EXPECTS(n_classes >= 1);
}

void ConfusionMatrix::add(int actual, int predicted) {
  FADEWICH_EXPECTS(actual >= 0 &&
                   static_cast<std::size_t>(actual) < counts_.size());
  FADEWICH_EXPECTS(predicted >= 0 &&
                   static_cast<std::size_t>(predicted) < counts_.size());
  ++counts_[static_cast<std::size_t>(actual)]
           [static_cast<std::size_t>(predicted)];
  ++total_;
}

std::size_t ConfusionMatrix::count(int actual, int predicted) const {
  FADEWICH_EXPECTS(actual >= 0 &&
                   static_cast<std::size_t>(actual) < counts_.size());
  FADEWICH_EXPECTS(predicted >= 0 &&
                   static_cast<std::size_t>(predicted) < counts_.size());
  return counts_[static_cast<std::size_t>(actual)]
                [static_cast<std::size_t>(predicted)];
}

double ConfusionMatrix::accuracy() const {
  FADEWICH_EXPECTS(total_ > 0);
  std::size_t diag = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) diag += counts_[i][i];
  return static_cast<double>(diag) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(int cls) const {
  FADEWICH_EXPECTS(cls >= 0 &&
                   static_cast<std::size_t>(cls) < counts_.size());
  const auto c = static_cast<std::size_t>(cls);
  std::size_t predicted = 0;
  for (std::size_t a = 0; a < counts_.size(); ++a) predicted += counts_[a][c];
  if (predicted == 0) return 0.0;
  return static_cast<double>(counts_[c][c]) / static_cast<double>(predicted);
}

double ConfusionMatrix::recall(int cls) const {
  FADEWICH_EXPECTS(cls >= 0 &&
                   static_cast<std::size_t>(cls) < counts_.size());
  const auto c = static_cast<std::size_t>(cls);
  std::size_t actual = 0;
  for (std::size_t p = 0; p < counts_.size(); ++p) actual += counts_[c][p];
  if (actual == 0) return 0.0;
  return static_cast<double>(counts_[c][c]) / static_cast<double>(actual);
}

double ConfusionMatrix::f_measure(int cls) const {
  const double p = precision(cls);
  const double r = recall(cls);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_f_measure() const {
  double acc = 0.0;
  for (std::size_t c = 0; c < counts_.size(); ++c) {
    acc += f_measure(static_cast<int>(c));
  }
  return acc / static_cast<double>(counts_.size());
}

MeanCi mean_with_ci95(const std::vector<double>& xs) {
  FADEWICH_EXPECTS(!xs.empty());
  MeanCi out;
  out.mean = stats::mean(xs);
  if (xs.size() >= 2) {
    const double se = std::sqrt(stats::sample_variance(xs) /
                                static_cast<double>(xs.size()));
    out.ci95_half_width = 1.96 * se;
  }
  return out;
}

}  // namespace fadewich::ml
