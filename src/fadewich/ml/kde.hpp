// One-dimensional Gaussian kernel density estimation.
//
// MD's normal profile (Section IV-C2) is the KDE of the distribution of
// summed standard deviations; the anomaly threshold is the (100-alpha)th
// percentile of the estimated CDF.  The Gaussian-kernel CDF has a closed
// form (sum of erfs), so the percentile is inverted by bisection.
//
// Layout: samples are kept in one flat array, sorted ascending, with the
// extremes cached.  Sorting buys tail pruning — a kernel centred more
// than kKdeKernelReach bandwidths below x contributes exactly 1 to the
// CDF (0 above, and 0 to the PDF either side), so evaluation only needs
// the samples inside a ±reach window found by binary search.  The
// *_block functions batch queries: they walk the sample window once per
// small query block (sample-major inner loop, vectorisable) instead of
// once per query, which is how the profile sweep and threshold updates
// stay cheap at scale.  The free *_sorted kernels are shared with
// core::NormalProfile so both evaluate the identical pruned sums.
#pragma once

#include <span>
#include <vector>

namespace fadewich::simd {
struct KernelTable;
}

namespace fadewich::ml {

/// Bandwidths beyond which a Gaussian kernel's tail is numerically flat:
/// exp(-0.5 * 8^2) ≈ 1.3e-14, below the 1e-12 equivalence budget even
/// summed over thousands of samples.
inline constexpr double kKdeKernelReach = 8.0;

// --- Free kernels over sorted flat sample arrays ----------------------
// All require `sorted` ascending and bandwidth > 0; NormalProfile calls
// them directly on its own ring snapshot to avoid copying into a KDE.

/// Pruned PDF at x: only samples within ±reach bandwidths contribute.
double kde_pdf_sorted(std::span<const double> sorted, double bandwidth,
                      double x);

/// Pruned CDF at x: samples below the window count 1, above count 0.
double kde_cdf_sorted(std::span<const double> sorted, double bandwidth,
                      double x);

/// Batched pruned PDF: out[i] = pdf(xs[i]).  Queries are processed in
/// small blocks sharing one sample-window scan; monotone (sweep-like)
/// query orders get the tightest windows.  out.size() == xs.size().
/// The exp sum runs through simd::active_kernels() (fast_exp, within the
/// 1e-12 pruning budget already granted to this API).
void kde_pdf_block_sorted(std::span<const double> sorted, double bandwidth,
                          std::span<const double> xs, std::span<double> out);

/// Same, through an explicit kernel table (benches / equivalence tests).
void kde_pdf_block_sorted(std::span<const double> sorted, double bandwidth,
                          std::span<const double> xs, std::span<double> out,
                          const simd::KernelTable& kernels);

/// Batched pruned CDF, same contract as kde_pdf_block_sorted.  The erf
/// sum stays on libm erf in every table (exact path — percentile()
/// bisection reads these tails).
void kde_cdf_block_sorted(std::span<const double> sorted, double bandwidth,
                          std::span<const double> xs, std::span<double> out);

/// Same, through an explicit kernel table.
void kde_cdf_block_sorted(std::span<const double> sorted, double bandwidth,
                          std::span<const double> xs, std::span<double> out,
                          const simd::KernelTable& kernels);

/// Inverse CDF by bisection over the pruned CDF, bracketed at the cached
/// extremes ± reach.  `max_iterations` bisection steps or until the
/// bracket shrinks below rel_tol * (1 + |hi|).  Requires p in (0, 1).
double kde_percentile_sorted(std::span<const double> sorted,
                             double bandwidth, double p, int max_iterations,
                             double rel_tol);

class GaussianKde {
 public:
  /// Fit to samples using Silverman's rule-of-thumb bandwidth.  Requires a
  /// non-empty sample set.
  explicit GaussianKde(std::span<const double> samples);

  /// Fit with an explicit bandwidth (> 0).
  GaussianKde(std::span<const double> samples, double bandwidth);

  double bandwidth() const { return bandwidth_; }
  std::size_t sample_count() const { return samples_.size(); }

  /// Cached sample extremes (the sorted array's ends) — percentile()
  /// brackets from these instead of re-scanning the samples.
  double min_sample() const { return samples_.front(); }
  double max_sample() const { return samples_.back(); }

  /// Estimated density at x.  Unpruned reference sum over every sample
  /// (the scalar baseline the block API is equivalence-tested against).
  double pdf(double x) const;

  /// Estimated cumulative distribution at x (exact for the Gaussian
  /// mixture the KDE defines).  Unpruned reference sum.
  double cdf(double x) const;

  /// Batched density: out[i] = density at xs[i], within 1e-12 of pdf()
  /// (tail pruning drops only numerically-flat kernels).
  void pdf_block(std::span<const double> xs, std::span<double> out) const;

  /// Batched CDF, within 1e-12 of cdf().
  void cdf_block(std::span<const double> xs, std::span<double> out) const;

  /// Inverse CDF by bisection; p in (0, 1).  Accurate to ~1e-9 of the
  /// sample range.  Brackets from the cached extremes and evaluates the
  /// pruned CDF, so repeated calls never re-scan the sample array.
  double percentile(double p) const;

  /// Silverman's rule: 1.06 * sigma_hat * n^(-1/5), with sigma_hat the
  /// sample standard deviation (a small floor keeps degenerate constant
  /// samples usable).
  static double silverman_bandwidth(std::span<const double> samples);

 private:
  std::vector<double> samples_;  // sorted ascending
  double bandwidth_;
};

}  // namespace fadewich::ml
