// One-dimensional Gaussian kernel density estimation.
//
// MD's normal profile (Section IV-C2) is the KDE of the distribution of
// summed standard deviations; the anomaly threshold is the (100-alpha)th
// percentile of the estimated CDF.  The Gaussian-kernel CDF has a closed
// form (sum of erfs), so the percentile is inverted by bisection.
#pragma once

#include <span>
#include <vector>

namespace fadewich::ml {

class GaussianKde {
 public:
  /// Fit to samples using Silverman's rule-of-thumb bandwidth.  Requires a
  /// non-empty sample set.
  explicit GaussianKde(std::span<const double> samples);

  /// Fit with an explicit bandwidth (> 0).
  GaussianKde(std::span<const double> samples, double bandwidth);

  double bandwidth() const { return bandwidth_; }
  std::size_t sample_count() const { return samples_.size(); }

  /// Estimated density at x.
  double pdf(double x) const;

  /// Estimated cumulative distribution at x (exact for the Gaussian
  /// mixture the KDE defines).
  double cdf(double x) const;

  /// Inverse CDF by bisection; p in (0, 1).  Accurate to ~1e-9 of the
  /// sample range.
  double percentile(double p) const;

  /// Silverman's rule: 1.06 * sigma_hat * n^(-1/5), with sigma_hat the
  /// sample standard deviation (a small floor keeps degenerate constant
  /// samples usable).
  static double silverman_bandwidth(std::span<const double> samples);

 private:
  std::vector<double> samples_;
  double bandwidth_;
};

}  // namespace fadewich::ml
