// Classification metrics: confusion matrices and the precision / recall /
// F-measure family the paper uses for MD (Fig. 7) and RE (Fig. 8).
#pragma once

#include <cstddef>
#include <vector>

namespace fadewich::ml {

/// Binary detection counts; the F-measure here is the paper's
/// 2 * precision * recall / (precision + recall).
struct DetectionCounts {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;

  /// TP / (TP + FP); defined as 0 when no positives were emitted.
  double precision() const;
  /// TP / (TP + FN); defined as 0 when there were no actual positives.
  double recall() const;
  /// Harmonic mean of precision and recall; 0 when both are 0.
  double f_measure() const;
};

/// Square confusion matrix over classes [0, n).
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t n_classes);

  void add(int actual, int predicted);

  std::size_t n_classes() const { return counts_.size(); }
  std::size_t count(int actual, int predicted) const;
  std::size_t total() const { return total_; }

  /// Fraction of diagonal entries.  Requires at least one observation.
  double accuracy() const;

  /// Per-class precision / recall (0 when undefined).
  double precision(int cls) const;
  double recall(int cls) const;
  double f_measure(int cls) const;

  /// Unweighted mean of per-class F-measures.
  double macro_f_measure() const;

 private:
  std::vector<std::vector<std::size_t>> counts_;
  std::size_t total_ = 0;
};

/// Mean of a vector of doubles plus a 95% normal-approximation confidence
/// half-width (used for Fig. 8's error bars).  Requires non-empty input;
/// the half-width is 0 for a single observation.
struct MeanCi {
  double mean = 0.0;
  double ci95_half_width = 0.0;
};
MeanCi mean_with_ci95(const std::vector<double>& xs);

}  // namespace fadewich::ml
