#include "fadewich/ml/mutual_info.hpp"

#include <cmath>
#include <map>

#include "fadewich/common/error.hpp"
#include "fadewich/stats/histogram.hpp"

namespace fadewich::ml {

double quantized_entropy(std::span<const double> values, std::size_t bins) {
  FADEWICH_EXPECTS(!values.empty());
  return stats::Histogram::from_data(values, bins).entropy();
}

double quantized_conditional_entropy(std::span<const double> values,
                                     std::span<const int> labels,
                                     std::size_t bins) {
  FADEWICH_EXPECTS(!values.empty());
  FADEWICH_EXPECTS(values.size() == labels.size());

  // Quantise on the global range so bins are shared across classes.
  const auto global = stats::Histogram::from_data(values, bins);
  std::map<int, std::vector<std::size_t>> class_bin_counts;
  std::map<int, std::size_t> class_totals;
  for (std::size_t i = 0; i < values.size(); ++i) {
    auto& counts = class_bin_counts[labels[i]];
    if (counts.empty()) counts.assign(bins, 0);
    ++counts[global.bin_of(values[i])];
    ++class_totals[labels[i]];
  }

  const double n = static_cast<double>(values.size());
  double h = 0.0;
  for (const auto& [cls, counts] : class_bin_counts) {
    const double n_cls = static_cast<double>(class_totals.at(cls));
    double h_cls = 0.0;
    for (std::size_t c : counts) {
      if (c == 0) continue;
      const double p = static_cast<double>(c) / n_cls;
      h_cls -= p * std::log(p);
    }
    h += (n_cls / n) * h_cls;
  }
  return h;
}

double relative_mutual_information(std::span<const double> values,
                                   std::span<const int> labels,
                                   std::size_t bins) {
  FADEWICH_EXPECTS(bins >= 1);
  FADEWICH_EXPECTS(values.size() == labels.size());
  const double hx = quantized_entropy(values, bins);
  if (hx == 0.0) return 0.0;
  const double hxy = quantized_conditional_entropy(values, labels, bins);
  return (hx - hxy) / hx;
}

}  // namespace fadewich::ml
