#include "fadewich/ml/svm.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "fadewich/common/error.hpp"
#include "fadewich/common/scratch_arena.hpp"
#include "fadewich/common/simd_kernels.hpp"

namespace fadewich::ml {

namespace {

// Queries evaluated per support-vector pass.  The accumulator arrays fit
// in registers and the inner loops over the block vectorise.
constexpr std::size_t kQueryBlock = 8;

}  // namespace

BinarySvm::BinarySvm(SvmConfig config) : config_(config) {
  FADEWICH_EXPECTS(config_.c > 0.0);
  FADEWICH_EXPECTS(config_.rbf_gamma > 0.0);
  FADEWICH_EXPECTS(config_.tolerance > 0.0);
}

double BinarySvm::kernel(std::span<const double> a,
                         std::span<const double> b) const {
  FADEWICH_EXPECTS(a.size() == b.size());
  // With a single query, the dimension-major transposed layout the table
  // kernels expect (qt[d * qstride + j], qstride = 1) is just b itself.
  const simd::KernelTable& kt = simd::active_kernels();
  double t = 0.0;
  switch (config_.kernel) {
    case KernelType::kLinear:
      kt.dot_block(a.data(), a.size(), b.data(), 1, 1, &t);
      return t;
    case KernelType::kRbf:
      kt.sqdist_block(a.data(), a.size(), b.data(), 1, 1, &t);
      return std::exp(-config_.rbf_gamma * t);
  }
  FADEWICH_ENSURES(false);
  return 0.0;
}

void BinarySvm::train(const std::vector<std::vector<double>>& features,
                      const std::vector<int>& labels) {
  FADEWICH_EXPECTS(!features.empty());
  FADEWICH_EXPECTS(features.size() == labels.size());
  const std::size_t n = features.size();
  const std::size_t dim = features[0].size();
  bool has_pos = false;
  bool has_neg = false;
  for (std::size_t i = 0; i < n; ++i) {
    FADEWICH_EXPECTS(features[i].size() == dim);
    FADEWICH_EXPECTS(labels[i] == -1 || labels[i] == 1);
    (labels[i] == 1 ? has_pos : has_neg) = true;
  }
  FADEWICH_EXPECTS(has_pos && has_neg);

  // Flatten once; the kernel matrix and the final support extraction both
  // stream rows out of this contiguous copy.
  const common::FlatMatrix x = common::FlatMatrix::from_rows(features);

  // Precompute the kernel matrix (flat n x n); n <= a few hundred in our
  // regime.
  std::vector<double> k(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = kernel(x.row_span(i), x.row_span(j));
      k[i * n + j] = v;
      k[j * n + i] = v;
    }
  }

  std::vector<double> alpha(n, 0.0);
  double b = 0.0;
  const double c = config_.c;
  const double tol = config_.tolerance;
  Rng rng(config_.seed);

  auto f = [&](std::size_t i) {
    double s = b;
    const double* col = k.data() + i;
    for (std::size_t j = 0; j < n; ++j) {
      if (alpha[j] > 0.0) s += alpha[j] * labels[j] * col[j * n];
    }
    return s;
  };

  std::size_t passes = 0;
  std::size_t iterations = 0;
  while (passes < config_.max_passes &&
         iterations < config_.max_iterations) {
    ++iterations;
    std::size_t changed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double ei = f(i) - labels[i];
      const bool violates = (labels[i] * ei < -tol && alpha[i] < c) ||
                            (labels[i] * ei > tol && alpha[i] > 0.0);
      if (!violates) continue;

      // Random partner distinct from i (simplified-SMO heuristic).
      std::size_t j =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 2));
      if (j >= i) ++j;
      const double ej = f(j) - labels[j];

      const double ai_old = alpha[i];
      const double aj_old = alpha[j];
      double lo;
      double hi;
      if (labels[i] != labels[j]) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(c, c + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - c);
        hi = std::min(c, ai_old + aj_old);
      }
      if (lo >= hi) continue;

      const double eta = 2.0 * k[i * n + j] - k[i * n + i] - k[j * n + j];
      if (eta >= 0.0) continue;

      double aj = aj_old - labels[j] * (ei - ej) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::abs(aj - aj_old) < 1e-7) continue;

      const double ai =
          ai_old + labels[i] * labels[j] * (aj_old - aj);

      const double b1 = b - ei - labels[i] * (ai - ai_old) * k[i * n + i] -
                        labels[j] * (aj - aj_old) * k[i * n + j];
      const double b2 = b - ej - labels[i] * (ai - ai_old) * k[i * n + j] -
                        labels[j] * (aj - aj_old) * k[j * n + j];
      alpha[i] = ai;
      alpha[j] = aj;
      if (ai > 0.0 && ai < c) {
        b = b1;
      } else if (aj > 0.0 && aj < c) {
        b = b2;
      } else {
        b = 0.5 * (b1 + b2);
      }
      ++changed;
    }
    passes = (changed == 0) ? passes + 1 : 0;
  }

  std::size_t sv_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (alpha[i] > 1e-12) ++sv_count;
  }
  support_x_.resize(sv_count, dim);
  support_alpha_y_.clear();
  support_alpha_y_.reserve(sv_count);
  std::size_t sv = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (alpha[i] > 1e-12) {
      std::copy(x.row(i), x.row(i) + dim, support_x_.row(sv));
      support_alpha_y_.push_back(alpha[i] * labels[i]);
      ++sv;
    }
  }
  bias_ = b;
  trained_ = true;
}

void BinarySvm::decision_rows(const double* xs, std::size_t stride,
                              std::size_t count, double* out) const {
  const std::size_t dim = support_x_.cols();
  const std::size_t nsv = support_x_.rows();
  const double gamma = config_.rbf_gamma;
  const simd::KernelTable& kt = simd::active_kernels();
  // The table kernels want the query block dimension-major so lane j can
  // load query j's component d from qt[d * kQueryBlock + j] contiguously.
  // Transposing costs one pass over the block; every SV then streams it.
  auto& arena = common::ScratchArena::local();
  const auto scratch_frame = arena.frame();
  const std::span<double> qt = arena.get<double>(dim * kQueryBlock);
  for (std::size_t base = 0; base < count; base += kQueryBlock) {
    const std::size_t n = std::min(kQueryBlock, count - base);
    const double* qs = xs + base * stride;
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t d = 0; d < dim; ++d) {
        qt[d * kQueryBlock + j] = qs[j * stride + d];
      }
    }
    double acc[kQueryBlock];
    for (std::size_t j = 0; j < n; ++j) acc[j] = bias_;
    // Support-vector-major: each SV row is read once for the whole block,
    // and each query's sum accumulates in SV order then dimension order —
    // the same order the scalar path uses, so results are bit-identical.
    for (std::size_t sv = 0; sv < nsv; ++sv) {
      const double* s = support_x_.row(sv);
      const double w = support_alpha_y_[sv];
      double t[kQueryBlock] = {};
      if (config_.kernel == KernelType::kLinear) {
        kt.dot_block(s, dim, qt.data(), kQueryBlock, n, t);
        for (std::size_t j = 0; j < n; ++j) acc[j] += w * t[j];
      } else {
        kt.sqdist_block(s, dim, qt.data(), kQueryBlock, n, t);
        kt.rbf_accum_block(t, n, w, gamma, acc);
      }
    }
    for (std::size_t j = 0; j < n; ++j) out[base + j] = acc[j];
  }
}

double BinarySvm::decision(const std::vector<double>& x) const {
  FADEWICH_EXPECTS(trained_);
  FADEWICH_EXPECTS(x.size() == support_x_.cols());
  double out = 0.0;
  decision_rows(x.data(), x.size(), 1, &out);
  return out;
}

void BinarySvm::decision_block(const common::FlatMatrix& xs,
                               std::span<double> out) const {
  FADEWICH_EXPECTS(trained_);
  FADEWICH_EXPECTS(xs.cols() == support_x_.cols());
  FADEWICH_EXPECTS(out.size() == xs.rows());
  decision_rows(xs.data(), xs.stride(), xs.rows(), out.data());
}

void BinarySvm::decision_block(std::span<const double> xs,
                               std::size_t count,
                               std::span<double> out) const {
  FADEWICH_EXPECTS(trained_);
  FADEWICH_EXPECTS(xs.size() == count * support_x_.cols());
  FADEWICH_EXPECTS(out.size() == count);
  decision_rows(xs.data(), support_x_.cols(), count, out.data());
}

int BinarySvm::predict(const std::vector<double>& x) const {
  return decision(x) >= 0.0 ? 1 : -1;
}

std::size_t BinarySvm::support_vector_count() const {
  FADEWICH_EXPECTS(trained_);
  return support_x_.rows();
}

BinarySvmState BinarySvm::export_state() const {
  FADEWICH_EXPECTS(trained_);
  return {support_x_.to_rows(), support_alpha_y_, bias_};
}

void BinarySvm::import_state(BinarySvmState state) {
  if (state.support_x.empty() ||
      state.support_x.size() != state.support_alpha_y.size()) {
    throw Error("svm state inconsistent: " +
                std::to_string(state.support_x.size()) +
                " support vectors vs " +
                std::to_string(state.support_alpha_y.size()) + " weights");
  }
  const std::size_t dim = state.support_x.front().size();
  if (dim == 0) throw Error("svm state has zero-width support vectors");
  for (const auto& row : state.support_x) {
    if (row.size() != dim) throw Error("svm state has ragged support rows");
  }
  support_x_ = common::FlatMatrix::from_rows(state.support_x);
  support_alpha_y_ = std::move(state.support_alpha_y);
  bias_ = state.bias;
  trained_ = true;
}

}  // namespace fadewich::ml
