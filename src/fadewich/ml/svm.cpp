#include "fadewich/ml/svm.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "fadewich/common/error.hpp"

namespace fadewich::ml {

BinarySvm::BinarySvm(SvmConfig config) : config_(config) {
  FADEWICH_EXPECTS(config_.c > 0.0);
  FADEWICH_EXPECTS(config_.rbf_gamma > 0.0);
  FADEWICH_EXPECTS(config_.tolerance > 0.0);
}

double BinarySvm::kernel(const std::vector<double>& a,
                         const std::vector<double>& b) const {
  FADEWICH_EXPECTS(a.size() == b.size());
  switch (config_.kernel) {
    case KernelType::kLinear: {
      double dot = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
      return dot;
    }
    case KernelType::kRbf: {
      double d2 = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        d2 += d * d;
      }
      return std::exp(-config_.rbf_gamma * d2);
    }
  }
  FADEWICH_ENSURES(false);
  return 0.0;
}

void BinarySvm::train(const std::vector<std::vector<double>>& features,
                      const std::vector<int>& labels) {
  FADEWICH_EXPECTS(!features.empty());
  FADEWICH_EXPECTS(features.size() == labels.size());
  const std::size_t n = features.size();
  const std::size_t dim = features[0].size();
  bool has_pos = false;
  bool has_neg = false;
  for (std::size_t i = 0; i < n; ++i) {
    FADEWICH_EXPECTS(features[i].size() == dim);
    FADEWICH_EXPECTS(labels[i] == -1 || labels[i] == 1);
    (labels[i] == 1 ? has_pos : has_neg) = true;
  }
  FADEWICH_EXPECTS(has_pos && has_neg);

  // Precompute the kernel matrix; n <= a few hundred in our regime.
  std::vector<std::vector<double>> k(n, std::vector<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = kernel(features[i], features[j]);
      k[i][j] = v;
      k[j][i] = v;
    }
  }

  std::vector<double> alpha(n, 0.0);
  double b = 0.0;
  const double c = config_.c;
  const double tol = config_.tolerance;
  Rng rng(config_.seed);

  auto f = [&](std::size_t i) {
    double s = b;
    for (std::size_t j = 0; j < n; ++j) {
      if (alpha[j] > 0.0) s += alpha[j] * labels[j] * k[j][i];
    }
    return s;
  };

  std::size_t passes = 0;
  std::size_t iterations = 0;
  while (passes < config_.max_passes &&
         iterations < config_.max_iterations) {
    ++iterations;
    std::size_t changed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double ei = f(i) - labels[i];
      const bool violates = (labels[i] * ei < -tol && alpha[i] < c) ||
                            (labels[i] * ei > tol && alpha[i] > 0.0);
      if (!violates) continue;

      // Random partner distinct from i (simplified-SMO heuristic).
      std::size_t j =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 2));
      if (j >= i) ++j;
      const double ej = f(j) - labels[j];

      const double ai_old = alpha[i];
      const double aj_old = alpha[j];
      double lo;
      double hi;
      if (labels[i] != labels[j]) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(c, c + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - c);
        hi = std::min(c, ai_old + aj_old);
      }
      if (lo >= hi) continue;

      const double eta = 2.0 * k[i][j] - k[i][i] - k[j][j];
      if (eta >= 0.0) continue;

      double aj = aj_old - labels[j] * (ei - ej) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::abs(aj - aj_old) < 1e-7) continue;

      const double ai =
          ai_old + labels[i] * labels[j] * (aj_old - aj);

      const double b1 = b - ei - labels[i] * (ai - ai_old) * k[i][i] -
                        labels[j] * (aj - aj_old) * k[i][j];
      const double b2 = b - ej - labels[i] * (ai - ai_old) * k[i][j] -
                        labels[j] * (aj - aj_old) * k[j][j];
      alpha[i] = ai;
      alpha[j] = aj;
      if (ai > 0.0 && ai < c) {
        b = b1;
      } else if (aj > 0.0 && aj < c) {
        b = b2;
      } else {
        b = 0.5 * (b1 + b2);
      }
      ++changed;
    }
    passes = (changed == 0) ? passes + 1 : 0;
  }

  support_x_.clear();
  support_alpha_y_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (alpha[i] > 1e-12) {
      support_x_.push_back(features[i]);
      support_alpha_y_.push_back(alpha[i] * labels[i]);
    }
  }
  bias_ = b;
  trained_ = true;
}

double BinarySvm::decision(const std::vector<double>& x) const {
  FADEWICH_EXPECTS(trained_);
  double s = bias_;
  for (std::size_t i = 0; i < support_x_.size(); ++i) {
    s += support_alpha_y_[i] * kernel(support_x_[i], x);
  }
  return s;
}

int BinarySvm::predict(const std::vector<double>& x) const {
  return decision(x) >= 0.0 ? 1 : -1;
}

std::size_t BinarySvm::support_vector_count() const {
  FADEWICH_EXPECTS(trained_);
  return support_x_.size();
}

BinarySvmState BinarySvm::export_state() const {
  FADEWICH_EXPECTS(trained_);
  return {support_x_, support_alpha_y_, bias_};
}

void BinarySvm::import_state(BinarySvmState state) {
  if (state.support_x.empty() ||
      state.support_x.size() != state.support_alpha_y.size()) {
    throw Error("svm state inconsistent: " +
                std::to_string(state.support_x.size()) +
                " support vectors vs " +
                std::to_string(state.support_alpha_y.size()) + " weights");
  }
  const std::size_t dim = state.support_x.front().size();
  if (dim == 0) throw Error("svm state has zero-width support vectors");
  for (const auto& row : state.support_x) {
    if (row.size() != dim) throw Error("svm state has ragged support rows");
  }
  support_x_ = std::move(state.support_x);
  support_alpha_y_ = std::move(state.support_alpha_y);
  bias_ = state.bias;
  trained_ = true;
}

}  // namespace fadewich::ml
