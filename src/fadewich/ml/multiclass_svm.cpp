#include "fadewich/ml/multiclass_svm.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "fadewich/common/error.hpp"
#include "fadewich/exec/thread_pool.hpp"

namespace fadewich::ml {

MulticlassSvm::MulticlassSvm(SvmConfig config) : config_(config) {}

void MulticlassSvm::train(const Dataset& data, exec::ThreadPool* pool) {
  FADEWICH_EXPECTS(!data.empty());
  const std::set<int> class_set(data.labels.begin(), data.labels.end());
  classes_.assign(class_set.begin(), class_set.end());
  scaler_.fit(data.features);
  const auto scaled = scaler_.transform(data.features);

  std::vector<std::pair<int, int>> pairs;
  for (std::size_t a = 0; a < classes_.size(); ++a) {
    for (std::size_t b = a + 1; b < classes_.size(); ++b) {
      pairs.emplace_back(classes_[a], classes_[b]);
    }
  }

  // Each one-vs-one problem reads the shared scaled matrix and trains a
  // self-seeded solver, so the problems run concurrently without any
  // cross-talk; collecting by pair index keeps the model order fixed.
  if (pool == nullptr) pool = &exec::ThreadPool::global();
  auto trained = pool->parallel_map(
      pairs, [&](const std::pair<int, int>& pair, std::size_t) {
        std::vector<std::vector<double>> x;
        std::vector<int> y;
        for (std::size_t i = 0; i < data.size(); ++i) {
          if (data.labels[i] == pair.first) {
            x.push_back(scaled[i]);
            y.push_back(1);
          } else if (data.labels[i] == pair.second) {
            x.push_back(scaled[i]);
            y.push_back(-1);
          }
        }
        BinarySvm svm(config_);
        svm.train(x, y);
        return svm;
      });

  machines_.clear();
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    machines_.emplace(pairs[p], std::move(trained[p]));
  }
  trained_ = true;
}

int MulticlassSvm::predict(const std::vector<double>& x) const {
  FADEWICH_EXPECTS(trained_);
  if (classes_.size() == 1) return classes_[0];
  const auto scaled = scaler_.transform(x);

  std::map<int, int> votes;
  std::map<int, double> margins;  // tie-break on summed |decision|
  for (const auto& [pair, svm] : machines_) {
    const double d = svm.decision(scaled);
    const int winner = d >= 0.0 ? pair.first : pair.second;
    ++votes[winner];
    margins[winner] += std::abs(d);
  }
  int best = classes_[0];
  int best_votes = -1;
  double best_margin = -1.0;
  for (int c : classes_) {
    const int v = votes.count(c) ? votes.at(c) : 0;
    const double m = margins.count(c) ? margins.at(c) : 0.0;
    if (v > best_votes || (v == best_votes && m > best_margin)) {
      best = c;
      best_votes = v;
      best_margin = m;
    }
  }
  return best;
}

double MulticlassSvm::accuracy(const Dataset& test) const {
  FADEWICH_EXPECTS(!test.empty());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (predict(test.features[i]) == test.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

}  // namespace fadewich::ml
