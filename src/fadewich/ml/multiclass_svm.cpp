#include "fadewich/ml/multiclass_svm.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <utility>

#include "fadewich/common/error.hpp"
#include "fadewich/common/scratch_arena.hpp"
#include "fadewich/exec/thread_pool.hpp"
#include "fadewich/obs/obs.hpp"

namespace fadewich::ml {

namespace {

struct MlMetrics {
  obs::Histogram decision_batch = obs::registry().histogram(
      "fadewich_ml_decision_batch",
      "queries per batched SVM inference call",
      {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
  obs::Gauge arena_bytes = obs::registry().gauge(
      "fadewich_scratch_arena_bytes",
      "bytes reserved across all live scratch arenas");
  static MlMetrics& get() {
    static MlMetrics metrics;
    return metrics;
  }
};

}  // namespace

MulticlassSvm::MulticlassSvm(SvmConfig config) : config_(config) {}

void MulticlassSvm::train(const Dataset& data, exec::ThreadPool* pool) {
  FADEWICH_EXPECTS(!data.empty());
  const std::set<int> class_set(data.labels.begin(), data.labels.end());
  classes_.assign(class_set.begin(), class_set.end());
  scaler_.fit(data.features);
  const auto scaled = scaler_.transform(data.features);

  std::vector<std::pair<int, int>> pairs;
  for (std::size_t a = 0; a < classes_.size(); ++a) {
    for (std::size_t b = a + 1; b < classes_.size(); ++b) {
      pairs.emplace_back(classes_[a], classes_[b]);
    }
  }

  // Each one-vs-one problem reads the shared scaled matrix and trains a
  // self-seeded solver, so the problems run concurrently without any
  // cross-talk; collecting by pair index keeps the model order fixed.
  if (pool == nullptr) pool = &exec::ThreadPool::global();
  auto trained = pool->parallel_map(
      pairs, [&](const std::pair<int, int>& pair, std::size_t) {
        std::vector<std::vector<double>> x;
        std::vector<int> y;
        for (std::size_t i = 0; i < data.size(); ++i) {
          if (data.labels[i] == pair.first) {
            x.push_back(scaled[i]);
            y.push_back(1);
          } else if (data.labels[i] == pair.second) {
            x.push_back(scaled[i]);
            y.push_back(-1);
          }
        }
        BinarySvm svm(config_);
        svm.train(x, y);
        return svm;
      });

  machines_.clear();
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    machines_.emplace(pairs[p], std::move(trained[p]));
  }
  trained_ = true;
}

// Batched one-vs-one voting over `count` packed unscaled rows.  Work
// proceeds machine-major: each pairwise machine's support-vector matrix
// is streamed once per batch (BinarySvm::decision_block), and every
// row's votes/margins accumulate in machine order — the identical order
// and arithmetic the per-query path used, so results are bit-for-bit
// the same.  All temporaries come from the calling thread's arena.
void MulticlassSvm::predict_rows(const double* xs, std::size_t stride,
                                 std::size_t count, int* out) const {
  const std::size_t dim = scaler_.means().size();
  const std::size_t k = classes_.size();
  auto& arena = common::ScratchArena::local();
  const auto frame = arena.frame();
  const std::span<double> scaled = arena.get<double>(count * dim);
  scaler_.transform_rows(xs, stride, count, scaled.data());
  const std::span<double> decisions = arena.get<double>(count);
  const std::span<int> votes = arena.get<int>(count * k);
  const std::span<double> margins = arena.get<double>(count * k);
  std::fill(votes.begin(), votes.end(), 0);
  std::fill(margins.begin(), margins.end(), 0.0);

  for (const auto& [pair, svm] : machines_) {
    svm.decision_block(std::span<const double>(scaled.data(), count * dim),
                       count, decisions);
    const auto first = static_cast<std::size_t>(
        std::lower_bound(classes_.begin(), classes_.end(), pair.first) -
        classes_.begin());
    const auto second = static_cast<std::size_t>(
        std::lower_bound(classes_.begin(), classes_.end(), pair.second) -
        classes_.begin());
    for (std::size_t r = 0; r < count; ++r) {
      const double d = decisions[r];
      const std::size_t winner = d >= 0.0 ? first : second;
      ++votes[r * k + winner];
      margins[r * k + winner] += std::abs(d);
    }
  }

  for (std::size_t r = 0; r < count; ++r) {
    int best = classes_[0];
    int best_votes = -1;
    double best_margin = -1.0;
    for (std::size_t c = 0; c < k; ++c) {
      const int v = votes[r * k + c];
      const double m = margins[r * k + c];
      if (v > best_votes || (v == best_votes && m > best_margin)) {
        best = classes_[c];
        best_votes = v;
        best_margin = m;
      }
    }
    out[r] = best;
  }

  auto& metrics = MlMetrics::get();
  metrics.decision_batch.observe(static_cast<double>(count));
  metrics.arena_bytes.set(static_cast<double>(
      common::ScratchArena::process_bytes_reserved()));
}

int MulticlassSvm::predict(const std::vector<double>& x) const {
  FADEWICH_EXPECTS(trained_);
  if (classes_.size() == 1) return classes_[0];
  FADEWICH_EXPECTS(x.size() == scaler_.means().size());
  int out = 0;
  predict_rows(x.data(), x.size(), 1, &out);
  return out;
}

void MulticlassSvm::predict_block(std::span<const double> xs,
                                  std::size_t count,
                                  std::span<int> out) const {
  FADEWICH_EXPECTS(trained_);
  FADEWICH_EXPECTS(out.size() == count);
  if (count == 0) return;
  if (classes_.size() == 1) {
    std::fill(out.begin(), out.end(), classes_[0]);
    return;
  }
  FADEWICH_EXPECTS(xs.size() == count * scaler_.means().size());
  predict_rows(xs.data(), scaler_.means().size(), count, out.data());
}

void MulticlassSvm::predict_block(
    const std::vector<std::vector<double>>& xs, std::span<int> out) const {
  FADEWICH_EXPECTS(trained_);
  FADEWICH_EXPECTS(out.size() == xs.size());
  if (xs.empty()) return;
  if (classes_.size() == 1) {
    std::fill(out.begin(), out.end(), classes_[0]);
    return;
  }
  // Pack the ragged rows once so the batched core streams contiguously.
  const std::size_t dim = scaler_.means().size();
  auto& arena = common::ScratchArena::local();
  const auto frame = arena.frame();
  const std::span<double> packed = arena.get<double>(xs.size() * dim);
  for (std::size_t r = 0; r < xs.size(); ++r) {
    FADEWICH_EXPECTS(xs[r].size() == dim);
    std::copy(xs[r].begin(), xs[r].end(), packed.data() + r * dim);
  }
  predict_rows(packed.data(), dim, xs.size(), out.data());
}

MulticlassSvmState MulticlassSvm::export_state() const {
  FADEWICH_EXPECTS(trained_);
  MulticlassSvmState state;
  state.classes = classes_;
  state.scaler_means = scaler_.means();
  state.scaler_scales = scaler_.scales();
  state.machines.reserve(machines_.size());
  for (const auto& [pair, svm] : machines_) {
    state.machines.push_back({pair.first, pair.second, svm.export_state()});
  }
  return state;
}

void MulticlassSvm::import_state(MulticlassSvmState state) {
  if (state.classes.empty()) throw Error("svm state has no classes");
  if (!std::is_sorted(state.classes.begin(), state.classes.end()) ||
      std::adjacent_find(state.classes.begin(), state.classes.end()) !=
          state.classes.end()) {
    throw Error("svm state classes are not sorted and unique");
  }
  const std::size_t k = state.classes.size();
  if (state.machines.size() != k * (k - 1) / 2) {
    throw Error("svm state has " + std::to_string(state.machines.size()) +
                " pairwise machines for " + std::to_string(k) + " classes");
  }

  StandardScaler scaler;
  scaler.restore(std::move(state.scaler_means),
                 std::move(state.scaler_scales));

  std::map<std::pair<int, int>, BinarySvm> machines;
  for (auto& machine : state.machines) {
    const std::pair<int, int> pair{machine.first_class,
                                   machine.second_class};
    if (pair.first >= pair.second ||
        !std::binary_search(state.classes.begin(), state.classes.end(),
                            pair.first) ||
        !std::binary_search(state.classes.begin(), state.classes.end(),
                            pair.second)) {
      throw Error("svm state pairwise machine references unknown classes");
    }
    BinarySvm svm(config_);
    svm.import_state(std::move(machine.svm));
    if (!machines.emplace(pair, std::move(svm)).second) {
      throw Error("svm state has a duplicate pairwise machine");
    }
  }

  classes_ = std::move(state.classes);
  scaler_ = std::move(scaler);
  machines_ = std::move(machines);
  trained_ = true;
}

double MulticlassSvm::accuracy(const Dataset& test) const {
  FADEWICH_EXPECTS(!test.empty());
  auto& arena = common::ScratchArena::local();
  const auto frame = arena.frame();
  const std::span<int> predicted = arena.get<int>(test.size());
  predict_block(test.features, predicted);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (predicted[i] == test.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

}  // namespace fadewich::ml
