#include "fadewich/ml/multiclass_svm.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <utility>

#include "fadewich/common/error.hpp"
#include "fadewich/exec/thread_pool.hpp"

namespace fadewich::ml {

MulticlassSvm::MulticlassSvm(SvmConfig config) : config_(config) {}

void MulticlassSvm::train(const Dataset& data, exec::ThreadPool* pool) {
  FADEWICH_EXPECTS(!data.empty());
  const std::set<int> class_set(data.labels.begin(), data.labels.end());
  classes_.assign(class_set.begin(), class_set.end());
  scaler_.fit(data.features);
  const auto scaled = scaler_.transform(data.features);

  std::vector<std::pair<int, int>> pairs;
  for (std::size_t a = 0; a < classes_.size(); ++a) {
    for (std::size_t b = a + 1; b < classes_.size(); ++b) {
      pairs.emplace_back(classes_[a], classes_[b]);
    }
  }

  // Each one-vs-one problem reads the shared scaled matrix and trains a
  // self-seeded solver, so the problems run concurrently without any
  // cross-talk; collecting by pair index keeps the model order fixed.
  if (pool == nullptr) pool = &exec::ThreadPool::global();
  auto trained = pool->parallel_map(
      pairs, [&](const std::pair<int, int>& pair, std::size_t) {
        std::vector<std::vector<double>> x;
        std::vector<int> y;
        for (std::size_t i = 0; i < data.size(); ++i) {
          if (data.labels[i] == pair.first) {
            x.push_back(scaled[i]);
            y.push_back(1);
          } else if (data.labels[i] == pair.second) {
            x.push_back(scaled[i]);
            y.push_back(-1);
          }
        }
        BinarySvm svm(config_);
        svm.train(x, y);
        return svm;
      });

  machines_.clear();
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    machines_.emplace(pairs[p], std::move(trained[p]));
  }
  trained_ = true;
}

int MulticlassSvm::predict(const std::vector<double>& x) const {
  FADEWICH_EXPECTS(trained_);
  if (classes_.size() == 1) return classes_[0];
  const auto scaled = scaler_.transform(x);

  std::map<int, int> votes;
  std::map<int, double> margins;  // tie-break on summed |decision|
  for (const auto& [pair, svm] : machines_) {
    const double d = svm.decision(scaled);
    const int winner = d >= 0.0 ? pair.first : pair.second;
    ++votes[winner];
    margins[winner] += std::abs(d);
  }
  int best = classes_[0];
  int best_votes = -1;
  double best_margin = -1.0;
  for (int c : classes_) {
    const int v = votes.count(c) ? votes.at(c) : 0;
    const double m = margins.count(c) ? margins.at(c) : 0.0;
    if (v > best_votes || (v == best_votes && m > best_margin)) {
      best = c;
      best_votes = v;
      best_margin = m;
    }
  }
  return best;
}

MulticlassSvmState MulticlassSvm::export_state() const {
  FADEWICH_EXPECTS(trained_);
  MulticlassSvmState state;
  state.classes = classes_;
  state.scaler_means = scaler_.means();
  state.scaler_scales = scaler_.scales();
  state.machines.reserve(machines_.size());
  for (const auto& [pair, svm] : machines_) {
    state.machines.push_back({pair.first, pair.second, svm.export_state()});
  }
  return state;
}

void MulticlassSvm::import_state(MulticlassSvmState state) {
  if (state.classes.empty()) throw Error("svm state has no classes");
  if (!std::is_sorted(state.classes.begin(), state.classes.end()) ||
      std::adjacent_find(state.classes.begin(), state.classes.end()) !=
          state.classes.end()) {
    throw Error("svm state classes are not sorted and unique");
  }
  const std::size_t k = state.classes.size();
  if (state.machines.size() != k * (k - 1) / 2) {
    throw Error("svm state has " + std::to_string(state.machines.size()) +
                " pairwise machines for " + std::to_string(k) + " classes");
  }

  StandardScaler scaler;
  scaler.restore(std::move(state.scaler_means),
                 std::move(state.scaler_scales));

  std::map<std::pair<int, int>, BinarySvm> machines;
  for (auto& machine : state.machines) {
    const std::pair<int, int> pair{machine.first_class,
                                   machine.second_class};
    if (pair.first >= pair.second ||
        !std::binary_search(state.classes.begin(), state.classes.end(),
                            pair.first) ||
        !std::binary_search(state.classes.begin(), state.classes.end(),
                            pair.second)) {
      throw Error("svm state pairwise machine references unknown classes");
    }
    BinarySvm svm(config_);
    svm.import_state(std::move(machine.svm));
    if (!machines.emplace(pair, std::move(svm)).second) {
      throw Error("svm state has a duplicate pairwise machine");
    }
  }

  classes_ = std::move(state.classes);
  scaler_ = std::move(scaler);
  machines_ = std::move(machines);
  trained_ = true;
}

double MulticlassSvm::accuracy(const Dataset& test) const {
  FADEWICH_EXPECTS(!test.empty());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (predict(test.features[i]) == test.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

}  // namespace fadewich::ml
