#include "fadewich/ml/multiclass_svm.hpp"

#include <algorithm>
#include <set>

#include "fadewich/common/error.hpp"

namespace fadewich::ml {

MulticlassSvm::MulticlassSvm(SvmConfig config) : config_(config) {}

void MulticlassSvm::train(const Dataset& data) {
  FADEWICH_EXPECTS(!data.empty());
  const std::set<int> class_set(data.labels.begin(), data.labels.end());
  classes_.assign(class_set.begin(), class_set.end());
  scaler_.fit(data.features);
  const auto scaled = scaler_.transform(data.features);

  machines_.clear();
  for (std::size_t a = 0; a < classes_.size(); ++a) {
    for (std::size_t b = a + 1; b < classes_.size(); ++b) {
      const int ca = classes_[a];
      const int cb = classes_[b];
      std::vector<std::vector<double>> x;
      std::vector<int> y;
      for (std::size_t i = 0; i < data.size(); ++i) {
        if (data.labels[i] == ca) {
          x.push_back(scaled[i]);
          y.push_back(1);
        } else if (data.labels[i] == cb) {
          x.push_back(scaled[i]);
          y.push_back(-1);
        }
      }
      BinarySvm svm(config_);
      svm.train(x, y);
      machines_.emplace(std::make_pair(ca, cb), std::move(svm));
    }
  }
  trained_ = true;
}

int MulticlassSvm::predict(const std::vector<double>& x) const {
  FADEWICH_EXPECTS(trained_);
  if (classes_.size() == 1) return classes_[0];
  const auto scaled = scaler_.transform(x);

  std::map<int, int> votes;
  std::map<int, double> margins;  // tie-break on summed |decision|
  for (const auto& [pair, svm] : machines_) {
    const double d = svm.decision(scaled);
    const int winner = d >= 0.0 ? pair.first : pair.second;
    ++votes[winner];
    margins[winner] += std::abs(d);
  }
  int best = classes_[0];
  int best_votes = -1;
  double best_margin = -1.0;
  for (int c : classes_) {
    const int v = votes.count(c) ? votes.at(c) : 0;
    const double m = margins.count(c) ? margins.at(c) : 0.0;
    if (v > best_votes || (v == best_votes && m > best_margin)) {
      best = c;
      best_votes = v;
      best_margin = m;
    }
  }
  return best;
}

double MulticlassSvm::accuracy(const Dataset& test) const {
  FADEWICH_EXPECTS(!test.empty());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (predict(test.features[i]) == test.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

}  // namespace fadewich::ml
