#include "fadewich/ml/cross_validation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <span>

#include "fadewich/common/error.hpp"
#include "fadewich/common/flat_matrix.hpp"
#include "fadewich/exec/thread_pool.hpp"
#include "fadewich/ml/multiclass_svm.hpp"

namespace fadewich::ml {

namespace {
std::vector<FoldSplit> folds_from_assignment(
    const std::vector<std::size_t>& fold_of, std::size_t k) {
  std::vector<FoldSplit> out(k);
  for (std::size_t i = 0; i < fold_of.size(); ++i) {
    for (std::size_t f = 0; f < k; ++f) {
      auto& split = out[f];
      if (fold_of[i] == f) {
        split.test_indices.push_back(i);
      } else {
        split.train_indices.push_back(i);
      }
    }
  }
  return out;
}
}  // namespace

std::vector<FoldSplit> stratified_k_fold(const std::vector<int>& labels,
                                         std::size_t k, Rng& rng) {
  FADEWICH_EXPECTS(k >= 2);
  FADEWICH_EXPECTS(labels.size() >= k);

  // Group sample indices by class, shuffle within each class, then deal
  // them round-robin into folds.
  std::map<int, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    by_class[labels[i]].push_back(i);
  }

  std::vector<std::size_t> fold_of(labels.size(), 0);
  std::size_t next_fold = 0;
  for (auto& [cls, indices] : by_class) {
    std::shuffle(indices.begin(), indices.end(), rng.engine());
    for (std::size_t i : indices) {
      fold_of[i] = next_fold;
      next_fold = (next_fold + 1) % k;
    }
  }
  return folds_from_assignment(fold_of, k);
}

std::vector<FoldSplit> k_fold(std::size_t n, std::size_t k, Rng& rng) {
  FADEWICH_EXPECTS(k >= 2);
  FADEWICH_EXPECTS(n >= k);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), rng.engine());

  std::vector<std::size_t> fold_of(n, 0);
  for (std::size_t pos = 0; pos < n; ++pos) {
    fold_of[order[pos]] = pos % k;
  }
  return folds_from_assignment(fold_of, k);
}

CrossValidationResult cross_validate(const Dataset& data,
                                     const std::vector<FoldSplit>& folds,
                                     const SvmConfig& config,
                                     exec::ThreadPool* pool) {
  FADEWICH_EXPECTS(!data.empty());
  FADEWICH_EXPECTS(!folds.empty());
  if (pool == nullptr) pool = &exec::ThreadPool::global();

  struct FoldOutcome {
    std::vector<int> predictions;  // parallel to fold.test_indices
    double accuracy = std::numeric_limits<double>::quiet_NaN();
  };
  // Folds write disjoint outcome slots; every fold trains from scratch on
  // its own subset, so fold order and thread placement are irrelevant.
  const auto outcomes = pool->parallel_map(
      folds, [&](const FoldSplit& fold, std::size_t) {
        FoldOutcome outcome;
        if (fold.train_indices.empty() || fold.test_indices.empty()) {
          return outcome;
        }
        MulticlassSvm svm(config);
        svm.train(data.subset(fold.train_indices), pool);
        // One batched pass over the held-out fold: every pairwise
        // machine streams its support vectors once for the whole fold
        // instead of once per test sample.
        common::FlatMatrix test_x(fold.test_indices.size(),
                                  data.features.front().size());
        for (std::size_t j = 0; j < fold.test_indices.size(); ++j) {
          const auto& row = data.features[fold.test_indices[j]];
          FADEWICH_EXPECTS(row.size() == test_x.cols());
          std::copy(row.begin(), row.end(), test_x.row(j));
        }
        outcome.predictions.resize(fold.test_indices.size());
        svm.predict_block(
            std::span<const double>(test_x.data(),
                                    test_x.rows() * test_x.cols()),
            test_x.rows(), outcome.predictions);
        std::size_t correct = 0;
        for (std::size_t j = 0; j < fold.test_indices.size(); ++j) {
          if (outcome.predictions[j] == data.labels[fold.test_indices[j]]) {
            ++correct;
          }
        }
        outcome.accuracy = static_cast<double>(correct) /
                           static_cast<double>(fold.test_indices.size());
        return outcome;
      });

  CrossValidationResult result;
  result.predictions.assign(data.size(), -1);
  result.fold_accuracy.reserve(folds.size());
  std::size_t correct = 0;
  std::size_t predicted = 0;
  for (std::size_t f = 0; f < folds.size(); ++f) {
    result.fold_accuracy.push_back(outcomes[f].accuracy);
    for (std::size_t j = 0; j < outcomes[f].predictions.size(); ++j) {
      const std::size_t i = folds[f].test_indices[j];
      FADEWICH_EXPECTS(i < data.size());
      result.predictions[i] = outcomes[f].predictions[j];
      ++predicted;
      if (result.predictions[i] == data.labels[i]) ++correct;
    }
  }
  result.accuracy = predicted > 0 ? static_cast<double>(correct) /
                                        static_cast<double>(predicted)
                                  : 0.0;
  return result;
}

}  // namespace fadewich::ml
