#include "fadewich/ml/cross_validation.hpp"

#include <algorithm>
#include <map>

#include "fadewich/common/error.hpp"

namespace fadewich::ml {

namespace {
std::vector<FoldSplit> folds_from_assignment(
    const std::vector<std::size_t>& fold_of, std::size_t k) {
  std::vector<FoldSplit> out(k);
  for (std::size_t i = 0; i < fold_of.size(); ++i) {
    for (std::size_t f = 0; f < k; ++f) {
      auto& split = out[f];
      if (fold_of[i] == f) {
        split.test_indices.push_back(i);
      } else {
        split.train_indices.push_back(i);
      }
    }
  }
  return out;
}
}  // namespace

std::vector<FoldSplit> stratified_k_fold(const std::vector<int>& labels,
                                         std::size_t k, Rng& rng) {
  FADEWICH_EXPECTS(k >= 2);
  FADEWICH_EXPECTS(labels.size() >= k);

  // Group sample indices by class, shuffle within each class, then deal
  // them round-robin into folds.
  std::map<int, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    by_class[labels[i]].push_back(i);
  }

  std::vector<std::size_t> fold_of(labels.size(), 0);
  std::size_t next_fold = 0;
  for (auto& [cls, indices] : by_class) {
    std::shuffle(indices.begin(), indices.end(), rng.engine());
    for (std::size_t i : indices) {
      fold_of[i] = next_fold;
      next_fold = (next_fold + 1) % k;
    }
  }
  return folds_from_assignment(fold_of, k);
}

std::vector<FoldSplit> k_fold(std::size_t n, std::size_t k, Rng& rng) {
  FADEWICH_EXPECTS(k >= 2);
  FADEWICH_EXPECTS(n >= k);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), rng.engine());

  std::vector<std::size_t> fold_of(n, 0);
  for (std::size_t pos = 0; pos < n; ++pos) {
    fold_of[order[pos]] = pos % k;
  }
  return folds_from_assignment(fold_of, k);
}

}  // namespace fadewich::ml
