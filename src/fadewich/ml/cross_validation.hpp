// Stratified k-fold cross-validation splits.
//
// The paper evaluates RE with 5-fold validation repeated over 10 random
// splits (Section VII-B); these helpers generate the index partitions.
#pragma once

#include <cstddef>
#include <vector>

#include "fadewich/common/rng.hpp"
#include "fadewich/ml/dataset.hpp"
#include "fadewich/ml/svm.hpp"

namespace fadewich::exec {
class ThreadPool;
}  // namespace fadewich::exec

namespace fadewich::ml {

struct FoldSplit {
  std::vector<std::size_t> train_indices;
  std::vector<std::size_t> test_indices;
};

/// Partition [0, labels.size()) into k folds, keeping each fold's class
/// proportions close to the full set's (stratified).  Classes with fewer
/// samples than k still appear in some folds' test sets.  Requires
/// 2 <= k <= labels.size().
std::vector<FoldSplit> stratified_k_fold(const std::vector<int>& labels,
                                         std::size_t k, Rng& rng);

/// Plain (unstratified) k-fold on shuffled indices.
std::vector<FoldSplit> k_fold(std::size_t n, std::size_t k, Rng& rng);

struct CrossValidationResult {
  /// Test-fold prediction per sample; -1 where a sample's fold was
  /// skipped (empty train or test split).
  std::vector<int> predictions;
  /// Accuracy per fold over its test indices; NaN for skipped folds.
  std::vector<double> fold_accuracy;
  /// Accuracy over every predicted sample.
  double accuracy = 0.0;

  std::size_t predicted_count() const {
    std::size_t n = 0;
    for (int p : predictions) n += p >= 0 ? 1 : 0;
    return n;
  }
};

/// Evaluate a one-vs-one SVM over precomputed folds: train one
/// MulticlassSvm per fold on its training split and predict its test
/// split.  Folds run concurrently on `pool` (the process-wide pool when
/// nullptr); each fold's model depends only on its own split and the
/// config seed, so the result is identical at any thread count.
CrossValidationResult cross_validate(const Dataset& data,
                                     const std::vector<FoldSplit>& folds,
                                     const SvmConfig& config,
                                     exec::ThreadPool* pool = nullptr);

}  // namespace fadewich::ml
