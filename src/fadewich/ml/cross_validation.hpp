// Stratified k-fold cross-validation splits.
//
// The paper evaluates RE with 5-fold validation repeated over 10 random
// splits (Section VII-B); these helpers generate the index partitions.
#pragma once

#include <cstddef>
#include <vector>

#include "fadewich/common/rng.hpp"
#include "fadewich/ml/dataset.hpp"

namespace fadewich::ml {

struct FoldSplit {
  std::vector<std::size_t> train_indices;
  std::vector<std::size_t> test_indices;
};

/// Partition [0, labels.size()) into k folds, keeping each fold's class
/// proportions close to the full set's (stratified).  Classes with fewer
/// samples than k still appear in some folds' test sets.  Requires
/// 2 <= k <= labels.size().
std::vector<FoldSplit> stratified_k_fold(const std::vector<int>& labels,
                                         std::size_t k, Rng& rng);

/// Plain (unstratified) k-fold on shuffled indices.
std::vector<FoldSplit> k_fold(std::size_t n, std::size_t k, Rng& rng);

}  // namespace fadewich::ml
