#include "fadewich/stats/correlation.hpp"

#include <cmath>

#include "fadewich/common/error.hpp"
#include "fadewich/stats/descriptive.hpp"

namespace fadewich::stats {

double pearson(std::span<const double> xs, std::span<const double> ys) {
  FADEWICH_EXPECTS(xs.size() == ys.size());
  FADEWICH_EXPECTS(xs.size() >= 2);
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<std::vector<double>> correlation_matrix(
    const std::vector<std::vector<double>>& series) {
  FADEWICH_EXPECTS(!series.empty());
  const std::size_t n = series.size();
  for (const auto& s : series) FADEWICH_EXPECTS(s.size() == series[0].size());
  std::vector<std::vector<double>> m(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    m[i][i] = 1.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double c = pearson(series[i], series[j]);
      m[i][j] = c;
      m[j][i] = c;
    }
  }
  return m;
}

}  // namespace fadewich::stats
