// Fixed-capacity sliding window over a scalar stream with O(1) mean and
// standard deviation queries.
//
// MD keeps one of these per RSSI stream (window size d in the paper) and
// queries the standard deviation at every tick, so the update path must be
// constant-time.  The statistics are maintained as incremental Welford
// mean/M2 updates — strictly O(1) per push, including the full-window
// replace step — which stays numerically stable on offset-heavy signals
// (RSSI sits near -60 dBm) where naive sum-of-squares catastrophically
// cancels.  As a belt-and-braces guard against very long streams the
// accumulators are still re-derived from the buffer every
// `kRefreshInterval` pushes; the amortised cost stays O(1).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fadewich::stats {

class RollingWindow {
 public:
  /// `capacity` is the window size in samples; must be >= 1.
  explicit RollingWindow(std::size_t capacity);

  /// Append a sample, evicting the oldest once the window is full.
  void push(double value);

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buffer_.size(); }
  bool full() const { return size_ == buffer_.size(); }
  bool empty() const { return size_ == 0; }

  /// Mean of the samples currently in the window.  Requires non-empty.
  double mean() const;

  /// Population variance of the window contents.  Requires non-empty.
  double variance() const;

  /// Population standard deviation.  Requires non-empty.
  double stddev() const;

  /// Copy of the window contents in arrival order (oldest first).
  std::vector<double> values() const;

  /// Remove all samples; capacity is unchanged.
  void clear();

 private:
  void refresh_sums();

  static constexpr std::size_t kRefreshInterval = 1u << 16;

  std::vector<double> buffer_;
  std::size_t head_ = 0;  // index of the slot the next push writes
  std::size_t size_ = 0;
  double mean_ = 0.0;  // Welford running mean
  double m2_ = 0.0;    // Welford sum of squared deviations from the mean
  std::size_t pushes_since_refresh_ = 0;
};

}  // namespace fadewich::stats
