// Pearson correlation and correlation matrices (Fig. 11 reproduces the
// correlation between per-stream variances over the labeled samples).
#pragma once

#include <span>
#include <vector>

namespace fadewich::stats {

/// Pearson correlation coefficient of two equally sized series.  Returns 0
/// when either series is constant.  Requires equal sizes >= 2.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Correlation matrix of `series[i]` vs `series[j]`.  All series must have
/// the same length >= 2; at least one series required.
std::vector<std::vector<double>> correlation_matrix(
    const std::vector<std::vector<double>>& series);

}  // namespace fadewich::stats
