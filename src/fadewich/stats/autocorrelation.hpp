// Autocorrelation of a scalar window, with the paper's normalisation:
//
//   R(k) = 1 / ((n-k) * sigma^2) * sum_{j}( (r_j - mu) * (r_{j+k} - mu) )
//
// (Section IV-D1).  A constant window has zero variance; its
// autocorrelation is defined here as 0 so feature extraction never divides
// by zero on a quiet, fully quantised RSSI window.
#pragma once

#include <span>
#include <vector>

namespace fadewich::stats {

/// Autocorrelation at a single lag k.  Requires 0 <= k < xs.size() and a
/// non-empty window.
double autocorrelation(std::span<const double> xs, std::size_t lag);

/// Autocorrelations for lags 1..max_lag.  Requires max_lag < xs.size().
std::vector<double> autocorrelations(std::span<const double> xs,
                                     std::size_t max_lag);

}  // namespace fadewich::stats
