// Fixed-bin histogram and Shannon entropy.
//
// RE's entropy feature is the entropy of the frequency-distribution
// histogram of an RSSI window (Section IV-D1); the RMI feature analysis
// (Appendix A) quantises feature values into 256 linearly spaced bins.
// Both uses are covered here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace fadewich::stats {

/// What happens to samples outside [lo, hi].
enum class OutlierPolicy {
  // Fold out-of-range samples into the boundary bins.  This silently
  // inflates the edge-bin mass (and thus shifts the entropy), which is
  // fine when the range comes from the data itself (from_data), but
  // callers quantising into a fixed a-priori range should prefer
  // kOutlierBins.  Out-of-range samples are still tallied in
  // underflow()/overflow() so the clamping is observable.
  kClamp,
  // Append two dedicated bins — underflow then overflow — after the
  // interior bins.  Out-of-range samples keep their own mass instead of
  // corrupting the boundary bins; probabilities() and entropy() include
  // them as ordinary outcomes.
  kOutlierBins,
};

class Histogram {
 public:
  /// Interior bins span [lo, hi] with `bins` equal-width cells; samples
  /// outside the range follow `policy` (clamped into the boundary bins
  /// by default).  Requires bins >= 1, lo < hi.
  Histogram(double lo, double hi, std::size_t bins,
            OutlierPolicy policy = OutlierPolicy::kClamp);

  /// Build a histogram whose range is the min/max of the data.  If all
  /// values are equal, a degenerate single-bin range around the value is
  /// used.  Requires non-empty data.
  static Histogram from_data(std::span<const double> xs, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  /// Total bins: interior plus, under kOutlierBins, the two outlier bins.
  std::size_t bin_count() const { return counts_.size(); }
  /// Interior (in-range) bins only.
  std::size_t interior_bin_count() const { return interior_; }
  OutlierPolicy policy() const { return policy_; }

  std::size_t total() const { return total_; }
  std::size_t count(std::size_t bin) const;
  const std::vector<std::size_t>& counts() const { return counts_; }

  /// Samples seen below lo / above hi, tallied under *both* policies
  /// (under kClamp they are folded into the boundary bins but still
  /// counted here, so silent clamping is detectable).
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }

  /// Index of the bin the value falls into.  Under kOutlierBins,
  /// out-of-range values map to the dedicated bins at
  /// interior_bin_count() (underflow) and interior_bin_count() + 1
  /// (overflow).
  std::size_t bin_of(double x) const;

  /// Center of an interior bin.  The outlier bins are half-open and have
  /// no center — passing their index is a contract violation.
  double bin_center(std::size_t bin) const;

  /// Empirical probability of each bin (counts / total).  Requires at
  /// least one sample.
  std::vector<double> probabilities() const;

  /// Shannon entropy (natural log) of the bin distribution; empty bins
  /// contribute zero.  Under kOutlierBins the outlier bins take part
  /// like any other outcome.  Requires at least one sample.
  double entropy() const;

 private:
  double lo_;
  double hi_;
  std::size_t interior_;
  OutlierPolicy policy_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Entropy of the value-frequency distribution of a window, exactly as RE
/// uses it: each distinct value is one outcome, P(r_j) its frequency.
/// RSSI samples are quantised (1 dBm), so distinct-value counting matches
/// the paper's histogram over the window's values.  Requires non-empty.
double value_entropy(std::span<const double> xs);

}  // namespace fadewich::stats
