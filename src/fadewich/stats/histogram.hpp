// Fixed-bin histogram and Shannon entropy.
//
// RE's entropy feature is the entropy of the frequency-distribution
// histogram of an RSSI window (Section IV-D1); the RMI feature analysis
// (Appendix A) quantises feature values into 256 linearly spaced bins.
// Both uses are covered here.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fadewich::stats {

class Histogram {
 public:
  /// Bins span [lo, hi] with `bins` equal-width cells; values outside the
  /// range are clamped into the boundary bins.  Requires bins >= 1, lo < hi.
  Histogram(double lo, double hi, std::size_t bins);

  /// Build a histogram whose range is the min/max of the data.  If all
  /// values are equal, a degenerate single-bin range around the value is
  /// used.  Requires non-empty data.
  static Histogram from_data(std::span<const double> xs, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  std::size_t count(std::size_t bin) const;
  const std::vector<std::size_t>& counts() const { return counts_; }

  /// Index of the bin the value falls into (after clamping).
  std::size_t bin_of(double x) const;

  /// Center of a bin.
  double bin_center(std::size_t bin) const;

  /// Empirical probability of each bin (counts / total).  Requires at
  /// least one sample.
  std::vector<double> probabilities() const;

  /// Shannon entropy (natural log) of the bin distribution; empty bins
  /// contribute zero.  Requires at least one sample.
  double entropy() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Entropy of the value-frequency distribution of a window, exactly as RE
/// uses it: each distinct value is one outcome, P(r_j) its frequency.
/// RSSI samples are quantised (1 dBm), so distinct-value counting matches
/// the paper's histogram over the window's values.  Requires non-empty.
double value_entropy(std::span<const double> xs);

}  // namespace fadewich::stats
