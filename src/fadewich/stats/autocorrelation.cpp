#include "fadewich/stats/autocorrelation.hpp"

#include "fadewich/common/error.hpp"
#include "fadewich/stats/descriptive.hpp"

namespace fadewich::stats {

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  FADEWICH_EXPECTS(!xs.empty());
  FADEWICH_EXPECTS(lag < xs.size());
  const double mu = mean(xs);
  const double var = variance(xs);
  if (var == 0.0) return 0.0;
  const std::size_t n = xs.size();
  double acc = 0.0;
  for (std::size_t j = 0; j + lag < n; ++j) {
    acc += (xs[j] - mu) * (xs[j + lag] - mu);
  }
  return acc / (static_cast<double>(n - lag) * var);
}

std::vector<double> autocorrelations(std::span<const double> xs,
                                     std::size_t max_lag) {
  FADEWICH_EXPECTS(max_lag < xs.size());
  std::vector<double> out;
  out.reserve(max_lag);
  for (std::size_t k = 1; k <= max_lag; ++k) {
    out.push_back(autocorrelation(xs, k));
  }
  return out;
}

}  // namespace fadewich::stats
