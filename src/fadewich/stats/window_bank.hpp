// A bank of per-stream sliding windows updated in lockstep.
//
// MD pushes one sample per stream per tick into windows that share a
// single size and capacity, then sums the per-stream standard
// deviations.  A vector<RollingWindow> scatters each stream's Welford
// state across objects, so the per-tick update is a strided walk the
// compiler cannot vectorise.  WindowBank stores the same state
// structure-of-arrays — one flat [capacity x streams] ring for the
// samples, flat mean/M2 arrays — and performs the whole row's Welford
// replace step through the SIMD kernel table.
//
// Equivalence contract: stream i of a WindowBank evolves bit-for-bit
// like a RollingWindow(capacity) fed the same samples (the kernels run
// the identical IEEE sequence per lane, including the delta / n division
// and the periodic batch-Welford refresh), so swapping MD onto the bank
// changes no detector output.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fadewich::stats {

class WindowBank {
 public:
  /// `streams` parallel windows, each `capacity` samples; both >= 1.
  WindowBank(std::size_t streams, std::size_t capacity);

  /// Append one sample per stream (row.size() == streams()), evicting
  /// each window's oldest sample once full.  Windows fill in lockstep.
  void push_row(std::span<const double> row);

  std::size_t streams() const { return streams_; }
  std::size_t capacity() const { return capacity_; }
  /// Samples currently in every window (they share one fill level).
  std::size_t size() const { return size_; }
  bool full() const { return size_ == capacity_; }
  bool empty() const { return size_ == 0; }

  /// Mean of stream i's window.  Requires non-empty.
  double mean(std::size_t i) const;

  /// Population variance of stream i's window.  Requires non-empty.
  double variance(std::size_t i) const;

  /// Population standard deviation of stream i's window.
  double stddev(std::size_t i) const;

  /// out[i] = stddev(i) for every stream in one kernel call.
  /// out.size() == streams(); requires non-empty.
  void stddev_into(std::span<double> out) const;

  /// Stream i's window contents in arrival order (oldest first).
  std::vector<double> values(std::size_t i) const;

  /// Remove all samples; capacity is unchanged.
  void clear();

 private:
  void refresh_sums();

  static constexpr std::size_t kRefreshInterval = 1u << 16;

  std::size_t streams_;
  std::size_t capacity_;
  std::vector<double> buffer_;  // ring of rows: slot k stream i at k*streams_+i
  std::size_t head_ = 0;        // row the next push_row writes
  std::size_t size_ = 0;
  std::vector<double> mean_;  // per-stream Welford running mean
  std::vector<double> m2_;    // per-stream Welford sum of squared deviations
  std::size_t pushes_since_refresh_ = 0;
};

}  // namespace fadewich::stats
