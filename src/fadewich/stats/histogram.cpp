#include "fadewich/stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "fadewich/common/error.hpp"
#include "fadewich/stats/descriptive.hpp"

namespace fadewich::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins,
                     OutlierPolicy policy)
    : lo_(lo),
      hi_(hi),
      interior_(bins),
      policy_(policy),
      counts_(policy == OutlierPolicy::kOutlierBins ? bins + 2 : bins, 0) {
  FADEWICH_EXPECTS(bins >= 1);
  FADEWICH_EXPECTS(lo < hi);
}

Histogram Histogram::from_data(std::span<const double> xs, std::size_t bins) {
  FADEWICH_EXPECTS(!xs.empty());
  double lo = min(xs);
  double hi = max(xs);
  if (lo == hi) {
    // Degenerate data: widen symmetrically so the single value maps to a
    // well-defined bin.
    lo -= 0.5;
    hi += 0.5;
  }
  Histogram h(lo, hi, bins);
  h.add_all(xs);
  return h;
}

void Histogram::add(double x) {
  if (x < lo_) ++underflow_;
  if (x > hi_) ++overflow_;
  ++counts_[bin_of(x)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

std::size_t Histogram::count(std::size_t bin) const {
  FADEWICH_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

std::size_t Histogram::bin_of(double x) const {
  if (policy_ == OutlierPolicy::kOutlierBins) {
    if (x < lo_) return interior_;       // underflow bin
    if (x > hi_) return interior_ + 1;   // overflow bin
  }
  const double clamped = std::clamp(x, lo_, hi_);
  const double width = (hi_ - lo_) / static_cast<double>(interior_);
  auto bin = static_cast<std::size_t>((clamped - lo_) / width);
  return std::min(bin, interior_ - 1);
}

double Histogram::bin_center(std::size_t bin) const {
  FADEWICH_EXPECTS(bin < interior_);
  const double width = (hi_ - lo_) / static_cast<double>(interior_);
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

std::vector<double> Histogram::probabilities() const {
  FADEWICH_EXPECTS(total_ > 0);
  std::vector<double> p(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    p[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return p;
}

double Histogram::entropy() const {
  FADEWICH_EXPECTS(total_ > 0);
  double h = 0.0;
  for (std::size_t c : counts_) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total_);
    h -= p * std::log(p);
  }
  return h;
}

double value_entropy(std::span<const double> xs) {
  FADEWICH_EXPECTS(!xs.empty());
  std::map<double, std::size_t> freq;
  for (double x : xs) ++freq[x];
  const double n = static_cast<double>(xs.size());
  double h = 0.0;
  for (const auto& [value, count] : freq) {
    const double p = static_cast<double>(count) / n;
    h -= p * std::log(p);
  }
  return h;
}

}  // namespace fadewich::stats
