#include "fadewich/stats/rolling_window.hpp"

#include <cmath>

#include "fadewich/common/error.hpp"

namespace fadewich::stats {

RollingWindow::RollingWindow(std::size_t capacity) : buffer_(capacity) {
  FADEWICH_EXPECTS(capacity >= 1);
}

void RollingWindow::push(double value) {
  if (full()) {
    const double evicted = buffer_[head_];
    sum_ -= evicted;
    sum_sq_ -= evicted * evicted;
  } else {
    ++size_;
  }
  buffer_[head_] = value;
  head_ = (head_ + 1) % buffer_.size();
  sum_ += value;
  sum_sq_ += value * value;

  if (++pushes_since_refresh_ >= kRefreshInterval) refresh_sums();
}

double RollingWindow::mean() const {
  FADEWICH_EXPECTS(!empty());
  return sum_ / static_cast<double>(size_);
}

double RollingWindow::variance() const {
  FADEWICH_EXPECTS(!empty());
  const double n = static_cast<double>(size_);
  const double m = sum_ / n;
  const double var = sum_sq_ / n - m * m;
  // Guard the tiny negative values running sums can produce.
  return var > 0.0 ? var : 0.0;
}

double RollingWindow::stddev() const { return std::sqrt(variance()); }

std::vector<double> RollingWindow::values() const {
  std::vector<double> out;
  out.reserve(size_);
  // Oldest element sits at head_ when full, at 0 otherwise.
  const std::size_t start = full() ? head_ : 0;
  for (std::size_t k = 0; k < size_; ++k) {
    out.push_back(buffer_[(start + k) % buffer_.size()]);
  }
  return out;
}

void RollingWindow::clear() {
  head_ = 0;
  size_ = 0;
  sum_ = 0.0;
  sum_sq_ = 0.0;
  pushes_since_refresh_ = 0;
}

void RollingWindow::refresh_sums() {
  sum_ = 0.0;
  sum_sq_ = 0.0;
  const std::size_t start = full() ? head_ : 0;
  for (std::size_t k = 0; k < size_; ++k) {
    const double v = buffer_[(start + k) % buffer_.size()];
    sum_ += v;
    sum_sq_ += v * v;
  }
  pushes_since_refresh_ = 0;
}

}  // namespace fadewich::stats
