#include "fadewich/stats/rolling_window.hpp"

#include <cmath>

#include "fadewich/common/error.hpp"

namespace fadewich::stats {

RollingWindow::RollingWindow(std::size_t capacity) : buffer_(capacity) {
  FADEWICH_EXPECTS(capacity >= 1);
}

void RollingWindow::push(double value) {
  if (full()) {
    // Replace the evicted sample in one combined Welford step: with the
    // count unchanged, mean moves by delta/n and M2 absorbs the evicted
    // and inserted deviations together.
    const double evicted = buffer_[head_];
    const double delta = value - evicted;
    const double dev_old = evicted - mean_;
    mean_ += delta / static_cast<double>(size_);
    const double dev_new = value - mean_;
    m2_ += delta * (dev_old + dev_new);
  } else {
    ++size_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(size_);
    m2_ += delta * (value - mean_);
  }
  buffer_[head_] = value;
  head_ = (head_ + 1) % buffer_.size();

  if (++pushes_since_refresh_ >= kRefreshInterval) refresh_sums();
}

double RollingWindow::mean() const {
  FADEWICH_EXPECTS(!empty());
  return mean_;
}

double RollingWindow::variance() const {
  FADEWICH_EXPECTS(!empty());
  const double var = m2_ / static_cast<double>(size_);
  // Guard the tiny negative values incremental updates can produce.
  return var > 0.0 ? var : 0.0;
}

double RollingWindow::stddev() const { return std::sqrt(variance()); }

std::vector<double> RollingWindow::values() const {
  std::vector<double> out;
  out.reserve(size_);
  // Oldest element sits at head_ when full, at 0 otherwise.
  const std::size_t start = full() ? head_ : 0;
  for (std::size_t k = 0; k < size_; ++k) {
    out.push_back(buffer_[(start + k) % buffer_.size()]);
  }
  return out;
}

void RollingWindow::clear() {
  head_ = 0;
  size_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
  pushes_since_refresh_ = 0;
}

void RollingWindow::refresh_sums() {
  // Re-derive the accumulators with a batch Welford pass over the live
  // window contents.
  mean_ = 0.0;
  m2_ = 0.0;
  const std::size_t start = full() ? head_ : 0;
  for (std::size_t k = 0; k < size_; ++k) {
    const double v = buffer_[(start + k) % buffer_.size()];
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(k + 1);
    m2_ += delta * (v - mean_);
  }
  pushes_since_refresh_ = 0;
}

}  // namespace fadewich::stats
