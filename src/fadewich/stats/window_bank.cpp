#include "fadewich/stats/window_bank.hpp"

#include <cmath>

#include "fadewich/common/error.hpp"
#include "fadewich/common/simd_kernels.hpp"

namespace fadewich::stats {

WindowBank::WindowBank(std::size_t streams, std::size_t capacity)
    : streams_(streams),
      capacity_(capacity),
      buffer_(streams * capacity),
      mean_(streams, 0.0),
      m2_(streams, 0.0) {
  FADEWICH_EXPECTS(streams >= 1);
  FADEWICH_EXPECTS(capacity >= 1);
}

void WindowBank::push_row(std::span<const double> row) {
  FADEWICH_EXPECTS(row.size() == streams_);
  const simd::KernelTable& kt = simd::active_kernels();
  double* slot = buffer_.data() + head_ * streams_;
  if (full()) {
    kt.welford_push_full(slot, row.data(), mean_.data(), m2_.data(),
                         static_cast<double>(size_), streams_);
  } else {
    ++size_;
    kt.welford_push_grow(slot, row.data(), mean_.data(), m2_.data(),
                         static_cast<double>(size_), streams_);
  }
  head_ = (head_ + 1) % capacity_;

  if (++pushes_since_refresh_ >= kRefreshInterval) refresh_sums();
}

double WindowBank::mean(std::size_t i) const {
  FADEWICH_EXPECTS(!empty());
  FADEWICH_EXPECTS(i < streams_);
  return mean_[i];
}

double WindowBank::variance(std::size_t i) const {
  FADEWICH_EXPECTS(!empty());
  FADEWICH_EXPECTS(i < streams_);
  const double var = m2_[i] / static_cast<double>(size_);
  // Guard the tiny negative values incremental updates can produce.
  return var > 0.0 ? var : 0.0;
}

double WindowBank::stddev(std::size_t i) const {
  return std::sqrt(variance(i));
}

void WindowBank::stddev_into(std::span<double> out) const {
  FADEWICH_EXPECTS(!empty());
  FADEWICH_EXPECTS(out.size() == streams_);
  simd::active_kernels().stddev_from_m2(
      m2_.data(), static_cast<double>(size_), out.data(), streams_);
}

std::vector<double> WindowBank::values(std::size_t i) const {
  FADEWICH_EXPECTS(i < streams_);
  std::vector<double> out;
  out.reserve(size_);
  // Oldest row sits at head_ when full, at 0 otherwise.
  const std::size_t start = full() ? head_ : 0;
  for (std::size_t k = 0; k < size_; ++k) {
    out.push_back(buffer_[((start + k) % capacity_) * streams_ + i]);
  }
  return out;
}

void WindowBank::clear() {
  head_ = 0;
  size_ = 0;
  mean_.assign(streams_, 0.0);
  m2_.assign(streams_, 0.0);
  pushes_since_refresh_ = 0;
}

void WindowBank::refresh_sums() {
  // Re-derive the accumulators with a batch Welford pass over the live
  // rows, all streams at once.  welford_push_grow with slot == values
  // rewrites each sample with itself, which keeps the buffer intact.
  const simd::KernelTable& kt = simd::active_kernels();
  mean_.assign(streams_, 0.0);
  m2_.assign(streams_, 0.0);
  const std::size_t start = full() ? head_ : 0;
  for (std::size_t k = 0; k < size_; ++k) {
    double* slot = buffer_.data() + ((start + k) % capacity_) * streams_;
    kt.welford_push_grow(slot, slot, mean_.data(), m2_.data(),
                         static_cast<double>(k + 1), streams_);
  }
  pushes_since_refresh_ = 0;
}

}  // namespace fadewich::stats
