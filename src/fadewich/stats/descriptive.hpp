// Descriptive statistics over spans of doubles: moments, quantiles, and an
// online Welford accumulator for single-pass mean/variance.
#pragma once

#include <cstddef>
#include <span>

namespace fadewich::stats {

/// Arithmetic mean.  Requires a non-empty span.
double mean(std::span<const double> xs);

/// Population variance (divides by n).  Requires a non-empty span.
double variance(std::span<const double> xs);

/// Sample variance (divides by n-1).  Requires at least two samples.
double sample_variance(std::span<const double> xs);

/// Population standard deviation.  Requires a non-empty span.
double stddev(std::span<const double> xs);

double min(std::span<const double> xs);
double max(std::span<const double> xs);

/// Linear-interpolation quantile, q in [0, 1].  Requires non-empty input.
/// Matches numpy's default ("linear") method, which the paper's tooling
/// (Python/scikit) would have used for its percentile thresholds.
double quantile(std::span<const double> xs, double q);

/// Convenience wrapper: percentile p in [0, 100].
double percentile(std::span<const double> xs, double p);

double median(std::span<const double> xs);

/// Single-pass numerically stable mean/variance accumulator.
class Welford {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  /// Requires count() >= 1.
  double mean() const;
  /// Population variance; requires count() >= 1.
  double variance() const;
  /// Sample variance; requires count() >= 2.
  double sample_variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace fadewich::stats
