#include "fadewich/stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "fadewich/common/error.hpp"

namespace fadewich::stats {

double mean(std::span<const double> xs) {
  FADEWICH_EXPECTS(!xs.empty());
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  FADEWICH_EXPECTS(!xs.empty());
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double sample_variance(std::span<const double> xs) {
  FADEWICH_EXPECTS(xs.size() >= 2);
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min(std::span<const double> xs) {
  FADEWICH_EXPECTS(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  FADEWICH_EXPECTS(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  FADEWICH_EXPECTS(!xs.empty());
  FADEWICH_EXPECTS(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double percentile(std::span<const double> xs, double p) {
  FADEWICH_EXPECTS(p >= 0.0 && p <= 100.0);
  return quantile(xs, p / 100.0);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

void Welford::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Welford::mean() const {
  FADEWICH_EXPECTS(n_ >= 1);
  return mean_;
}

double Welford::variance() const {
  FADEWICH_EXPECTS(n_ >= 1);
  return m2_ / static_cast<double>(n_);
}

double Welford::sample_variance() const {
  FADEWICH_EXPECTS(n_ >= 2);
  return m2_ / static_cast<double>(n_ - 1);
}

double Welford::stddev() const { return std::sqrt(variance()); }

}  // namespace fadewich::stats
