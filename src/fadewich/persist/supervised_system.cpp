#include "fadewich/persist/supervised_system.hpp"

#include <exception>
#include <utility>

#include "fadewich/common/error.hpp"
#include "fadewich/common/simd.hpp"

namespace fadewich::persist {

namespace {
constexpr const char* kPipelineModule = "pipeline";

SupervisedConfig validated(SupervisedConfig config) {
  if (config.checkpoint_period_ticks < 1) {
    throw Error("supervised config: checkpoint_period_ticks must be >= 1");
  }
  return config;
}
}  // namespace

SupervisedSystem::SupervisedSystem(std::size_t stream_count,
                                   std::size_t workstation_count,
                                   core::SystemConfig system_config,
                                   SupervisedConfig config)
    : system_(stream_count, workstation_count, system_config),
      recovery_(validated(config).recovery),
      supervisor_(config.supervisor),
      checkpoint_period_(config.checkpoint_period_ticks) {
  station_health_.imputed_per_stream.assign(stream_count, 0);
  supervisor_.add_module(kPipelineModule,
                         [this]() { return restore_from_ring(); });

  const std::optional<Snapshot> snapshot =
      recovery_.recover(&recovery_report_);
  if (snapshot) {
    system_.import_state(snapshot->system);
    station_health_ = snapshot->station;
    obs::events().info("persist", "recovered from snapshot", 0,
                       {{"path", recovery_report_.recovered_path}});
  } else {
    degraded_start_ = true;
    obs::events().warn("persist", "cold start: no usable snapshot", 0);
  }
}

bool SupervisedSystem::restore_from_ring() {
  RecoveryReport report;
  const std::optional<Snapshot> snapshot = recovery_.recover(&report);
  if (!snapshot) return false;
  try {
    system_.import_state(snapshot->system);
  } catch (const Error&) {
    return false;
  }
  station_health_ = snapshot->station;
  return true;
}

SupervisedSystem::StepResult SupervisedSystem::step(
    std::span<const double> rssi_row, std::span<const std::uint8_t> valid) {
  StepResult result;
  ++steps_;
  const Tick tick = static_cast<Tick>(steps_);
  try {
    result.inner = system_.step(rssi_row, valid);
    supervisor_.heartbeat(kPipelineModule, tick);
    if (steps_ % static_cast<std::uint64_t>(checkpoint_period_) == 0) {
      checkpoint_now();
    }
  } catch (const std::exception& e) {
    supervisor_.report_failure(kPipelineModule, tick, e.what());
    supervisor_.poll(tick);
    result.inner = {};
    result.recovered = true;
    obs::events().error("persist", "pipeline step failed; restored", tick,
                        {{"what", e.what()}});
  }
  return result;
}

obs::ScrapeReport SupervisedSystem::scrape(
    const net::FaultInjector::Counters* faults) const {
  obs::ScrapeReport report =
      obs::scrape(obs::registry(), &obs::events(), &obs::tracer());

  obs::HealthBlock pipeline;
  pipeline.name = "pipeline";
  pipeline.add("tick", static_cast<double>(system_.tick()));
  pipeline.add("training", system_.training() ? 1.0 : 0.0);
  pipeline.add("degraded_start", degraded_start_ ? 1.0 : 0.0);
  pipeline.add("checkpoints_written",
               static_cast<double>(checkpoints_written()));
  pipeline.add("simd_isa", static_cast<double>(simd::active_isa()));
  report.health.push_back(std::move(pipeline));

  report.health.push_back(net::health_block(station_health_));
  if (faults != nullptr) {
    report.health.push_back(net::health_block(*faults));
  }
  report.health.push_back(health_block(supervisor_.health()));
  return report;
}

std::string SupervisedSystem::checkpoint_now() {
  Snapshot snapshot;
  snapshot.system = system_.export_state();
  snapshot.station = station_health_;
  return recovery_.checkpoint(snapshot);
}

}  // namespace fadewich::persist
