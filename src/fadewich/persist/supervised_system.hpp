// SupervisedSystem: a FadewichSystem under crash protection.
//
// On construction it recovers the newest valid snapshot from the ring
// (or cold-starts, flagged degraded).  Every step() heartbeats the
// watchdog, checkpoints on a fixed period, and catches module
// exceptions: a throwing step is reported to the Supervisor, which
// restores the last checkpoint (bounded by max_restarts).  After a
// restore the pipeline resumes from the snapshot's tick with empty
// sliding windows, so detection re-warms for `md.std_window` seconds.
#pragma once

#include <cstdint>
#include <optional>

#include "fadewich/core/system.hpp"
#include "fadewich/net/central_station.hpp"
#include "fadewich/net/fault_injector.hpp"
#include "fadewich/obs/obs.hpp"
#include "fadewich/persist/recovery.hpp"
#include "fadewich/persist/supervisor.hpp"

namespace fadewich::persist {

struct SupervisedConfig {
  RecoveryConfig recovery;
  SupervisorConfig supervisor;
  Tick checkpoint_period_ticks = 600;  // >= 1
};

class SupervisedSystem {
 public:
  /// Builds the pipeline, then recovers from the snapshot ring.  A
  /// usable snapshot restores everything learned; otherwise the system
  /// cold-starts and degraded_start() is true.
  SupervisedSystem(std::size_t stream_count, std::size_t workstation_count,
                   core::SystemConfig system_config,
                   SupervisedConfig config);

  /// True when construction found no usable snapshot (training and the
  /// profile start from scratch).
  bool degraded_start() const { return degraded_start_; }

  /// What recovery saw at construction: the winning file, every
  /// rejected one and why, and whether this was a cold start.
  const RecoveryReport& recovery_report() const { return recovery_report_; }

  // --- Pipeline passthrough -----------------------------------------
  core::FadewichSystem& system() { return system_; }
  const core::FadewichSystem& system() const { return system_; }
  Seconds now() const { return system_.now(); }
  bool training() const { return system_.training(); }
  void record_input(std::size_t workstation, Seconds t) {
    system_.record_input(workstation, t);
  }
  bool finish_training() { return system_.finish_training(); }

  /// Step the pipeline under the watchdog.  A throwing step is
  /// reported, the Supervisor restores the last checkpoint, and an
  /// empty result is returned for that tick; `recovered` is set so
  /// callers can observe the restart.
  struct StepResult {
    core::FadewichSystem::StepResult inner;
    bool recovered = false;  // this step restored from a checkpoint
  };
  StepResult step(std::span<const double> rssi_row,
                  std::span<const std::uint8_t> valid = {});

  /// Latest central-station health to embed in checkpoints (optional;
  /// zeroed when never set).
  void set_station_health(net::StationHealth health) {
    station_health_ = std::move(health);
  }

  /// Force a checkpoint now; returns its path.
  std::string checkpoint_now();

  std::uint64_t checkpoints_written() const {
    return recovery_.checkpoints_written();
  }

  HealthReport health() const { return supervisor_.health(); }

  /// One unified observability document: every metric family plus
  /// pipeline, station, fault (when given), and supervisor health, with
  /// recent events and finished spans folded in.  Render with
  /// to_prometheus() or to_json().
  obs::ScrapeReport scrape(
      const net::FaultInjector::Counters* faults = nullptr) const;

 private:
  bool restore_from_ring();

  core::FadewichSystem system_;
  RecoveryManager recovery_;
  Supervisor supervisor_;
  Tick checkpoint_period_;
  net::StationHealth station_health_;
  RecoveryReport recovery_report_;
  bool degraded_start_ = false;
  std::uint64_t steps_ = 0;
};

}  // namespace fadewich::persist
