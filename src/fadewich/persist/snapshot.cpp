#include "fadewich/persist/snapshot.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "fadewich/common/crc32.hpp"
#include "fadewich/common/error.hpp"

namespace fadewich::persist {

namespace {

constexpr char kMagic[4] = {'F', 'D', 'W', 'S'};
constexpr char kEndMagic[4] = {'F', 'D', 'W', 'E'};

// ---- payload writer ---------------------------------------------------

struct Writer {
  std::string out;

  template <typename T>
  void pod(const T& value) {
    const char* bytes = reinterpret_cast<const char*>(&value);
    out.append(bytes, sizeof(T));
  }

  void u8(std::uint8_t v) { pod(v); }
  void u64(std::uint64_t v) { pod(v); }

  void doubles(const std::vector<double>& v) {
    u64(v.size());
    if (!v.empty()) {
      out.append(reinterpret_cast<const char*>(v.data()),
                 v.size() * sizeof(double));
    }
  }

  void ints(const std::vector<int>& v) {
    u64(v.size());
    for (int x : v) pod(static_cast<std::int32_t>(x));
  }

  void u64s(const std::vector<std::uint64_t>& v) {
    u64(v.size());
    if (!v.empty()) {
      out.append(reinterpret_cast<const char*>(v.data()),
                 v.size() * sizeof(std::uint64_t));
    }
  }

  void matrix(const std::vector<std::vector<double>>& m) {
    u64(m.size());
    u64(m.empty() ? 0 : m.front().size());
    for (const auto& row : m) {
      if (row.size() != (m.empty() ? 0 : m.front().size())) {
        throw Error("snapshot encode: ragged matrix");
      }
      if (!row.empty()) {
        out.append(reinterpret_cast<const char*>(row.data()),
                   row.size() * sizeof(double));
      }
    }
  }
};

// ---- payload reader ---------------------------------------------------

// Bounds-checked cursor: every count is validated against the bytes that
// actually remain before any allocation, so a garbage length can never
// drive a huge allocation or an out-of-bounds read.
struct Reader {
  const char* data;
  std::size_t size;
  std::size_t pos = 0;

  void require(std::size_t n) const {
    if (n > size - pos) throw Error("snapshot payload truncated");
  }

  template <typename T>
  T pod() {
    require(sizeof(T));
    T value;
    std::memcpy(&value, data + pos, sizeof(T));
    pos += sizeof(T);
    return value;
  }

  std::uint8_t u8() { return pod<std::uint8_t>(); }
  std::uint64_t u64() { return pod<std::uint64_t>(); }

  std::size_t count(std::size_t element_size) {
    const std::uint64_t n = u64();
    if (element_size > 0 && n > (size - pos) / element_size) {
      throw Error("snapshot payload has an implausible element count");
    }
    return static_cast<std::size_t>(n);
  }

  std::vector<double> doubles() {
    const std::size_t n = count(sizeof(double));
    std::vector<double> v(n);
    if (n > 0) {
      require(n * sizeof(double));
      std::memcpy(v.data(), data + pos, n * sizeof(double));
      pos += n * sizeof(double);
    }
    return v;
  }

  std::vector<int> ints() {
    const std::size_t n = count(sizeof(std::int32_t));
    std::vector<int> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      v.push_back(static_cast<int>(pod<std::int32_t>()));
    }
    return v;
  }

  std::vector<std::uint64_t> u64s() {
    const std::size_t n = count(sizeof(std::uint64_t));
    std::vector<std::uint64_t> v(n);
    if (n > 0) {
      require(n * sizeof(std::uint64_t));
      std::memcpy(v.data(), data + pos, n * sizeof(std::uint64_t));
      pos += n * sizeof(std::uint64_t);
    }
    return v;
  }

  std::vector<std::vector<double>> matrix() {
    const std::uint64_t rows = u64();
    const std::uint64_t cols = u64();
    if (cols > 0 && rows > (size - pos) / (cols * sizeof(double))) {
      throw Error("snapshot payload has an implausible matrix shape");
    }
    std::vector<std::vector<double>> m;
    m.reserve(static_cast<std::size_t>(rows));
    for (std::uint64_t r = 0; r < rows; ++r) {
      std::vector<double> row(static_cast<std::size_t>(cols));
      if (cols > 0) {
        require(static_cast<std::size_t>(cols) * sizeof(double));
        std::memcpy(row.data(), data + pos, cols * sizeof(double));
        pos += static_cast<std::size_t>(cols) * sizeof(double);
      }
      m.push_back(std::move(row));
    }
    return m;
  }
};

void write_system(Writer& w, const core::SystemState& s) {
  w.u64(s.tick);
  w.u8(s.training ? 1 : 0);

  w.pod(static_cast<std::int64_t>(s.md.now));
  w.pod(s.md.last_st);
  w.u64(s.md.degraded_ticks);
  w.doubles(s.md.profile_samples);
  w.doubles(s.md.profile_queue);
  w.doubles(s.md.calibration_buffer);

  w.u8(static_cast<std::uint8_t>(s.controller));
  w.doubles(s.kma_last_input);

  w.u64(s.sessions.size());
  for (const core::SessionSnapshot& session : s.sessions) {
    w.u8(static_cast<std::uint8_t>(session.state));
    w.pod(session.last_alert);
  }

  w.u8(s.re_trained ? 1 : 0);
  if (s.re_trained) {
    w.ints(s.re.classes);
    w.doubles(s.re.scaler_means);
    w.doubles(s.re.scaler_scales);
    w.u64(s.re.machines.size());
    for (const auto& machine : s.re.machines) {
      w.pod(static_cast<std::int32_t>(machine.first_class));
      w.pod(static_cast<std::int32_t>(machine.second_class));
      w.matrix(machine.svm.support_x);
      w.doubles(machine.svm.support_alpha_y);
      w.pod(machine.svm.bias);
    }
  }

  w.matrix(s.training_samples.features);
  w.ints(s.training_samples.labels);
}

core::SystemState read_system(Reader& r) {
  core::SystemState s;
  s.tick = r.u64();
  s.training = r.u8() != 0;

  s.md.now = static_cast<Tick>(r.pod<std::int64_t>());
  s.md.last_st = r.pod<double>();
  s.md.degraded_ticks = r.u64();
  s.md.profile_samples = r.doubles();
  s.md.profile_queue = r.doubles();
  s.md.calibration_buffer = r.doubles();

  const std::uint8_t controller = r.u8();
  if (controller > 1) throw Error("snapshot has a corrupt controller state");
  s.controller = static_cast<core::ControlState>(controller);
  s.kma_last_input = r.doubles();

  const std::size_t sessions = r.count(sizeof(std::uint8_t) + sizeof(double));
  s.sessions.reserve(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    core::SessionSnapshot session;
    const std::uint8_t state = r.u8();
    if (state > 3) throw Error("snapshot has a corrupt session state");
    session.state = static_cast<core::SessionState>(state);
    session.last_alert = r.pod<double>();
    s.sessions.push_back(session);
  }

  s.re_trained = r.u8() != 0;
  if (s.re_trained) {
    s.re.classes = r.ints();
    s.re.scaler_means = r.doubles();
    s.re.scaler_scales = r.doubles();
    const std::size_t machines = r.count(2 * sizeof(std::int32_t));
    s.re.machines.reserve(machines);
    for (std::size_t i = 0; i < machines; ++i) {
      ml::MulticlassSvmState::PairwiseMachine machine;
      machine.first_class = static_cast<int>(r.pod<std::int32_t>());
      machine.second_class = static_cast<int>(r.pod<std::int32_t>());
      machine.svm.support_x = r.matrix();
      machine.svm.support_alpha_y = r.doubles();
      machine.svm.bias = r.pod<double>();
      s.re.machines.push_back(std::move(machine));
    }
  }

  s.training_samples.features = r.matrix();
  s.training_samples.labels = r.ints();
  if (s.training_samples.features.size() !=
      s.training_samples.labels.size()) {
    throw Error("snapshot training set is ragged");
  }
  return s;
}

void write_station(Writer& w, const net::StationHealth& h) {
  w.u64(h.reports);
  w.u64(h.duplicates);
  w.u64(h.late_reports);
  w.u64(h.evictions);
  w.u64(h.incomplete_releases);
  w.u64(h.imputed_cells);
  w.u64(h.duplicates_rejected);
  w.u64(h.malformed);
  w.u64s(h.imputed_per_stream);
}

net::StationHealth read_station(Reader& r) {
  net::StationHealth h;
  h.reports = r.u64();
  h.duplicates = r.u64();
  h.late_reports = r.u64();
  h.evictions = r.u64();
  h.incomplete_releases = r.u64();
  h.imputed_cells = r.u64();
  h.duplicates_rejected = r.u64();
  h.malformed = r.u64();
  h.imputed_per_stream = r.u64s();
  return h;
}

}  // namespace

std::string encode_snapshot(const Snapshot& snapshot) {
  Writer payload;
  write_system(payload, snapshot.system);
  write_station(payload, snapshot.station);

  std::string out;
  out.reserve(payload.out.size() + 24);
  out.append(kMagic, sizeof(kMagic));
  Writer header;
  header.pod(kSnapshotVersion);
  header.u64(payload.out.size());
  out += header.out;
  out += payload.out;
  Writer trailer;
  trailer.pod(crc32(payload.out.data(), payload.out.size()));
  out += trailer.out;
  out.append(kEndMagic, sizeof(kEndMagic));
  return out;
}

Snapshot decode_snapshot(const std::string& bytes) {
  Reader r{bytes.data(), bytes.size()};
  char magic[4];
  r.require(sizeof(magic));
  std::memcpy(magic, bytes.data(), sizeof(magic));
  r.pos += sizeof(magic);
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw Error("not a FADEWICH snapshot (bad magic)");
  }
  const auto version = r.pod<std::uint32_t>();
  if (version != kSnapshotVersion) {
    throw Error("unsupported snapshot version " + std::to_string(version));
  }
  const std::uint64_t payload_len = r.u64();
  if (payload_len > bytes.size() - r.pos) {
    throw Error("snapshot truncated (payload cut short)");
  }
  const std::size_t payload_begin = r.pos;
  Reader payload{bytes.data() + payload_begin,
                 static_cast<std::size_t>(payload_len)};
  Snapshot snapshot;
  snapshot.system = read_system(payload);
  snapshot.station = read_station(payload);
  if (payload.pos != payload.size) {
    throw Error("snapshot payload has trailing garbage");
  }

  r.pos = payload_begin + static_cast<std::size_t>(payload_len);
  const auto stored_crc = r.pod<std::uint32_t>();
  const std::uint32_t actual_crc =
      crc32(bytes.data() + payload_begin, payload_len);
  if (stored_crc != actual_crc) throw Error("snapshot CRC mismatch");
  char end_magic[4];
  r.require(sizeof(end_magic));
  std::memcpy(end_magic, bytes.data() + r.pos, sizeof(end_magic));
  r.pos += sizeof(end_magic);
  if (std::memcmp(end_magic, kEndMagic, sizeof(kEndMagic)) != 0) {
    throw Error("snapshot truncated (end marker missing)");
  }
  return snapshot;
}

void save_snapshot(const Snapshot& snapshot, const std::string& path) {
  const std::string bytes = encode_snapshot(snapshot);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw Error("cannot open for writing: " + tmp);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.flush();
    if (!os) throw Error("snapshot write failed: " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw Error("snapshot rename failed: " + path);
  }
}

Snapshot load_snapshot(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw Error("cannot open for reading: " + path);
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  if (!is.good() && !is.eof()) throw Error("cannot read: " + path);
  return decode_snapshot(bytes);
}

}  // namespace fadewich::persist
