// Snapshot ring + recovery policy.
//
// A RecoveryManager owns a directory of numbered snapshot files
// (`snap-00000042.fdws`).  checkpoint() writes a new snapshot atomically
// and prunes the ring to `ring_size` files; recover() walks the ring
// newest-first, skipping corrupt or version-mismatched files, retrying
// transient I/O failures with bounded backoff, and returns the newest
// snapshot that validates — or nullopt for an explicit cold start.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fadewich/persist/snapshot.hpp"

namespace fadewich::persist {

struct RecoveryConfig {
  std::string directory;       // created on demand; must be non-empty
  std::size_t ring_size = 4;   // snapshots retained, >= 1
  std::size_t max_retries = 3; // attempts per file on transient I/O
  double backoff_ms = 10.0;    // sleep between retries, >= 0
};

/// One rejected snapshot file during recovery.
struct RecoveryAttempt {
  std::string path;
  std::string reason;
};

/// What happened during recover(): which file won (empty on cold start),
/// which were rejected and why, and whether the pipeline starts degraded
/// (cold start — everything learned is gone).
struct RecoveryReport {
  std::string recovered_path;
  std::vector<RecoveryAttempt> rejected;
  bool cold_start = false;
};

class RecoveryManager {
 public:
  /// Validates the config (throws fadewich::Error) and creates the
  /// snapshot directory if missing.  Numbering continues from the
  /// highest existing snapshot, so a restarted process never overwrites
  /// its predecessor's files.
  explicit RecoveryManager(RecoveryConfig config);

  const RecoveryConfig& config() const { return config_; }

  /// Write a new snapshot into the ring; returns its path.  Prunes the
  /// oldest files beyond ring_size.
  std::string checkpoint(const Snapshot& snapshot);

  /// Load the newest valid snapshot, falling back across the ring.
  /// Returns nullopt (cold start) when no file validates; never throws
  /// for bad snapshot data.  Details land in *report when non-null.
  std::optional<Snapshot> recover(RecoveryReport* report = nullptr);

  /// Paths of the retained snapshots, oldest first.
  std::vector<std::string> ring() const;

  std::uint64_t checkpoints_written() const { return checkpoints_written_; }

 private:
  RecoveryConfig config_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t checkpoints_written_ = 0;
};

}  // namespace fadewich::persist
