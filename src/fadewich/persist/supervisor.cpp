#include "fadewich/persist/supervisor.hpp"

#include "fadewich/common/error.hpp"

namespace fadewich::persist {

Supervisor::Supervisor(SupervisorConfig config) : config_(config) {
  if (config_.stall_ticks < 1) {
    throw Error("supervisor config: stall_ticks must be >= 1");
  }
  if (config_.max_restarts < 1) {
    throw Error("supervisor config: max_restarts must be >= 1");
  }
}

void Supervisor::add_module(const std::string& name, RestartFn restart) {
  if (name.empty()) throw Error("supervisor: module name must be non-empty");
  if (!restart) throw Error("supervisor: restart callback must be set");
  if (index_.count(name) != 0) {
    throw Error("supervisor: duplicate module " + name);
  }
  Module module;
  module.name = name;
  module.restart = std::move(restart);
  index_.emplace(name, modules_.size());
  modules_.push_back(std::move(module));
}

Supervisor::Module& Supervisor::find(const std::string& name) {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    throw Error("supervisor: unknown module " + name);
  }
  return modules_[it->second];
}

void Supervisor::heartbeat(const std::string& name, Tick tick) {
  Module& m = find(name);
  m.last_heartbeat = tick;
  m.faulted = false;
}

void Supervisor::report_failure(const std::string& name, Tick tick,
                                const std::string& what) {
  Module& m = find(name);
  m.last_heartbeat = tick;
  m.faulted = true;
  m.last_fault = what;
}

std::size_t Supervisor::poll(Tick now) {
  std::size_t restarted = 0;
  for (Module& m : modules_) {
    if (m.failed) continue;
    const bool stalled = now - m.last_heartbeat > config_.stall_ticks;
    if (!m.faulted && !stalled) continue;
    if (m.restarts >= config_.max_restarts) {
      m.failed = true;
      continue;
    }
    ++m.restarts;
    ++restarted;
    const bool ok = m.restart();
    if (ok) {
      m.faulted = false;
      m.last_heartbeat = now;
    } else {
      m.failed = true;
    }
  }
  return restarted;
}

obs::HealthBlock health_block(const HealthReport& report) {
  obs::HealthBlock block;
  block.name = "supervisor";
  block.add("modules", static_cast<double>(report.modules.size()));
  block.add("total_restarts",
            static_cast<double>(report.total_restarts));
  block.add("all_healthy", report.all_healthy() ? 1.0 : 0.0);
  for (const ModuleHealth& m : report.modules) {
    block.add(m.name + "_status", static_cast<double>(m.status));
    block.add(m.name + "_restarts", static_cast<double>(m.restarts));
    block.add(m.name + "_last_heartbeat",
              static_cast<double>(m.last_heartbeat));
  }
  return block;
}

HealthReport Supervisor::health() const {
  HealthReport report;
  report.modules.reserve(modules_.size());
  for (const Module& m : modules_) {
    ModuleHealth h;
    h.name = m.name;
    h.status = m.failed      ? ModuleStatus::kFailed
               : m.faulted   ? ModuleStatus::kRestarting
                             : ModuleStatus::kHealthy;
    h.last_heartbeat = m.last_heartbeat;
    h.restarts = m.restarts;
    h.last_fault = m.last_fault;
    report.modules.push_back(std::move(h));
    report.total_restarts += m.restarts;
  }
  return report;
}

}  // namespace fadewich::persist
