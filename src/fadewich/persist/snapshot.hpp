// Crash-safe state snapshots.
//
// A snapshot is everything the pipeline has learned (core::SystemState:
// KDE profile, trained SVM + scaler, controller FSM, KMA idle timers,
// session states, training set) plus the central station's health block,
// serialized as one versioned binary blob:
//
//   "FDWS" | u32 version | u64 payload_len | payload | u32 crc32 | "FDWE"
//
// The CRC covers the payload; the end magic makes truncation explicit
// (a partially written file fails before any payload is trusted).  Files
// are written atomically — serialize to memory, write `<path>.tmp`,
// fsync-free rename — so a crash mid-write never leaves a half snapshot
// under the final name.  Every decode error is a fadewich::Error, so
// callers (the RecoveryManager) can fall back across the snapshot ring
// instead of aborting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "fadewich/core/system.hpp"
#include "fadewich/net/central_station.hpp"

namespace fadewich::persist {

// v2: StationHealth gained duplicates_rejected + malformed (PR 8).
inline constexpr std::uint32_t kSnapshotVersion = 2;

struct Snapshot {
  core::SystemState system;
  net::StationHealth station;  // zeroed when no central station is used
};

/// Serialize to the framed binary format (header + payload + CRC).
std::string encode_snapshot(const Snapshot& snapshot);

/// Parse and validate a framed snapshot.  Throws fadewich::Error on bad
/// magic, unsupported version, truncation, CRC mismatch, or an absurd
/// count inside the payload.
Snapshot decode_snapshot(const std::string& bytes);

/// Atomic write: the snapshot appears at `path` completely or not at all.
void save_snapshot(const Snapshot& snapshot, const std::string& path);

/// Load + validate a snapshot file.  Throws fadewich::Error as above;
/// a missing/unreadable file throws with a "cannot open" message so
/// callers can distinguish transient I/O from corruption.
Snapshot load_snapshot(const std::string& path);

}  // namespace fadewich::persist
