// Supervisor: a watchdog over named pipeline modules.
//
// Modules heartbeat() every tick they make progress and report_failure()
// when they throw.  poll() checks each module's last heartbeat against
// `stall_ticks`; a stalled or faulted module is restarted through its
// registered callback (which typically restores the last checkpoint).
// Restarts are counted per module and bounded by `max_restarts` — a
// module past the bound is marked kFailed and left alone, so a
// persistent crash loop degrades loudly instead of spinning forever.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "fadewich/common/time.hpp"
#include "fadewich/obs/export.hpp"

namespace fadewich::persist {

struct SupervisorConfig {
  Tick stall_ticks = 50;        // heartbeats this old mean "stalled", >= 1
  std::size_t max_restarts = 5; // per module, >= 1
};

enum class ModuleStatus { kHealthy, kRestarting, kFailed };

struct ModuleHealth {
  std::string name;
  ModuleStatus status = ModuleStatus::kHealthy;
  Tick last_heartbeat = 0;
  std::uint64_t restarts = 0;
  std::string last_fault;  // what() of the most recent failure, if any
};

struct HealthReport {
  std::vector<ModuleHealth> modules;
  std::uint64_t total_restarts = 0;

  bool all_healthy() const {
    for (const ModuleHealth& m : modules) {
      if (m.status != ModuleStatus::kHealthy) return false;
    }
    return true;
  }
};

class Supervisor {
 public:
  /// Validates the config; throws fadewich::Error on nonsense values.
  explicit Supervisor(SupervisorConfig config);

  using RestartFn = std::function<bool()>;  // false = restart failed

  /// Register a module.  `restart` is invoked by poll() when the module
  /// stalls or faults; it should restore known-good state and return
  /// whether it succeeded.  Names must be unique.
  void add_module(const std::string& name, RestartFn restart);

  /// The module made progress at `tick`.
  void heartbeat(const std::string& name, Tick tick);

  /// The module threw; recorded and restarted on the next poll().
  void report_failure(const std::string& name, Tick tick,
                      const std::string& what);

  /// Check every module at `now`: restart those that stalled
  /// (now - last_heartbeat > stall_ticks) or faulted, up to max_restarts
  /// each.  Returns the number of restarts performed this poll.
  std::size_t poll(Tick now);

  HealthReport health() const;

 private:
  struct Module {
    std::string name;
    RestartFn restart;
    Tick last_heartbeat = 0;
    bool faulted = false;
    std::string last_fault;
    std::uint64_t restarts = 0;
    bool failed = false;
  };

  Module& find(const std::string& name);

  SupervisorConfig config_;
  std::vector<Module> modules_;
  // Name -> modules_ index.  A fleet registers one module per office
  // shard and heartbeats every shard every block; a linear find would
  // make that O(shards^2) per block.
  std::unordered_map<std::string, std::size_t> index_;
};

/// Flatten watchdog health for obs::ScrapeReport: overall totals plus a
/// per-module restart count and status code (0 healthy, 1 restarting,
/// 2 failed).
obs::HealthBlock health_block(const HealthReport& report);

}  // namespace fadewich::persist
