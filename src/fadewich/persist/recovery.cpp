#include "fadewich/persist/recovery.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "fadewich/common/error.hpp"

namespace fadewich::persist {

namespace fs = std::filesystem;

namespace {

constexpr char kPrefix[] = "snap-";
constexpr char kSuffix[] = ".fdws";

/// Parse the sequence number out of "snap-%08llu.fdws"; nullopt for
/// anything else (foreign files in the directory are left alone).
std::optional<std::uint64_t> parse_seq(const std::string& name) {
  const std::size_t prefix_len = sizeof(kPrefix) - 1;
  const std::size_t suffix_len = sizeof(kSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return std::nullopt;
  if (name.compare(0, prefix_len, kPrefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return std::nullopt;
  }
  std::uint64_t seq = 0;
  for (std::size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return seq;
}

std::string snapshot_name(std::uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%08llu%s", kPrefix,
                static_cast<unsigned long long>(seq), kSuffix);
  return buf;
}

/// (seq, path) pairs of every snapshot in the directory, oldest first.
std::vector<std::pair<std::uint64_t, std::string>> list_snapshots(
    const std::string& directory) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    const auto seq = parse_seq(entry.path().filename().string());
    if (seq) found.emplace_back(*seq, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  return found;
}

}  // namespace

RecoveryManager::RecoveryManager(RecoveryConfig config)
    : config_(std::move(config)) {
  if (config_.directory.empty()) {
    throw Error("recovery config: directory must be non-empty");
  }
  if (config_.ring_size < 1) {
    throw Error("recovery config: ring_size must be >= 1");
  }
  if (config_.max_retries < 1) {
    throw Error("recovery config: max_retries must be >= 1");
  }
  if (!(config_.backoff_ms >= 0.0)) {
    throw Error("recovery config: backoff_ms must be >= 0");
  }
  std::error_code ec;
  fs::create_directories(config_.directory, ec);
  if (ec && !fs::is_directory(config_.directory)) {
    throw Error("recovery: cannot create directory " + config_.directory);
  }
  for (const auto& [seq, path] : list_snapshots(config_.directory)) {
    next_seq_ = std::max(next_seq_, seq + 1);
  }
}

std::string RecoveryManager::checkpoint(const Snapshot& snapshot) {
  const std::string path =
      (fs::path(config_.directory) / snapshot_name(next_seq_)).string();
  save_snapshot(snapshot, path);
  ++next_seq_;
  ++checkpoints_written_;

  auto existing = list_snapshots(config_.directory);
  while (existing.size() > config_.ring_size) {
    std::error_code ec;
    fs::remove(existing.front().second, ec);
    existing.erase(existing.begin());
  }
  return path;
}

std::optional<Snapshot> RecoveryManager::recover(RecoveryReport* report) {
  RecoveryReport local;
  RecoveryReport& out = report ? *report : local;
  out = RecoveryReport{};

  auto existing = list_snapshots(config_.directory);
  for (auto it = existing.rbegin(); it != existing.rend(); ++it) {
    const std::string& path = it->second;
    std::string last_reason;
    for (std::size_t attempt = 0; attempt < config_.max_retries; ++attempt) {
      try {
        Snapshot snapshot = load_snapshot(path);
        out.recovered_path = path;
        return snapshot;
      } catch (const Error& e) {
        last_reason = e.what();
        // Corruption is permanent: the file's bytes won't change, so
        // retrying only makes sense for transient open/read failures.
        if (last_reason.find("cannot open") == std::string::npos &&
            last_reason.find("cannot read") == std::string::npos) {
          break;
        }
        if (attempt + 1 < config_.max_retries && config_.backoff_ms > 0.0) {
          std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
              config_.backoff_ms));
        }
      }
    }
    out.rejected.push_back({path, last_reason});
  }
  out.cold_start = true;
  return std::nullopt;
}

std::vector<std::string> RecoveryManager::ring() const {
  std::vector<std::string> paths;
  for (auto& [seq, path] : list_snapshots(config_.directory)) {
    paths.push_back(path);
  }
  return paths;
}

}  // namespace fadewich::persist
