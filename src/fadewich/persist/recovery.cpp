#include "fadewich/persist/recovery.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "fadewich/common/error.hpp"
#include "fadewich/obs/obs.hpp"

namespace fadewich::persist {

namespace fs = std::filesystem;

namespace {

struct PersistMetrics {
  obs::Counter checkpoints = obs::registry().counter(
      "fadewich_persist_checkpoints_total", "snapshots written");
  obs::Counter recoveries = obs::registry().counter(
      "fadewich_persist_recoveries_total", "recover() invocations");
  obs::Counter rejected = obs::registry().counter(
      "fadewich_persist_snapshots_rejected_total",
      "snapshot files rejected during recovery");
  obs::Counter cold_starts = obs::registry().counter(
      "fadewich_persist_cold_starts_total",
      "recoveries that found no usable snapshot");
  obs::Histogram checkpoint_latency = obs::registry().histogram(
      "fadewich_persist_checkpoint_seconds",
      "checkpoint write + ring prune wall time");
  obs::Histogram recover_latency = obs::registry().histogram(
      "fadewich_persist_recover_seconds", "recover() wall time");
  static PersistMetrics& get() {
    static PersistMetrics metrics;
    return metrics;
  }
};

/// Observes elapsed wall time on destruction; no-cost when obs is off.
class ScopedTimer {
 public:
  explicit ScopedTimer(obs::Histogram& histogram)
      : histogram_(histogram), timed_(obs::enabled()) {
    if (timed_) started_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (!timed_) return;
    histogram_.observe(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - started_)
                           .count());
  }

 private:
  obs::Histogram& histogram_;
  bool timed_;
  std::chrono::steady_clock::time_point started_;
};

constexpr char kPrefix[] = "snap-";
constexpr char kSuffix[] = ".fdws";

/// Parse the sequence number out of "snap-%08llu.fdws"; nullopt for
/// anything else (foreign files in the directory are left alone).
std::optional<std::uint64_t> parse_seq(const std::string& name) {
  const std::size_t prefix_len = sizeof(kPrefix) - 1;
  const std::size_t suffix_len = sizeof(kSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return std::nullopt;
  if (name.compare(0, prefix_len, kPrefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return std::nullopt;
  }
  std::uint64_t seq = 0;
  for (std::size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return seq;
}

std::string snapshot_name(std::uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%08llu%s", kPrefix,
                static_cast<unsigned long long>(seq), kSuffix);
  return buf;
}

/// (seq, path) pairs of every snapshot in the directory, oldest first.
std::vector<std::pair<std::uint64_t, std::string>> list_snapshots(
    const std::string& directory) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    const auto seq = parse_seq(entry.path().filename().string());
    if (seq) found.emplace_back(*seq, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  return found;
}

}  // namespace

RecoveryManager::RecoveryManager(RecoveryConfig config)
    : config_(std::move(config)) {
  if (config_.directory.empty()) {
    throw Error("recovery config: directory must be non-empty");
  }
  if (config_.ring_size < 1) {
    throw Error("recovery config: ring_size must be >= 1");
  }
  if (config_.max_retries < 1) {
    throw Error("recovery config: max_retries must be >= 1");
  }
  if (!(config_.backoff_ms >= 0.0)) {
    throw Error("recovery config: backoff_ms must be >= 0");
  }
  std::error_code ec;
  fs::create_directories(config_.directory, ec);
  if (ec && !fs::is_directory(config_.directory)) {
    throw Error("recovery: cannot create directory " + config_.directory);
  }
  for (const auto& [seq, path] : list_snapshots(config_.directory)) {
    next_seq_ = std::max(next_seq_, seq + 1);
  }
}

std::string RecoveryManager::checkpoint(const Snapshot& snapshot) {
  auto& metrics = PersistMetrics::get();
  ScopedTimer timer(metrics.checkpoint_latency);
  metrics.checkpoints.inc();
  const std::string path =
      (fs::path(config_.directory) / snapshot_name(next_seq_)).string();
  save_snapshot(snapshot, path);
  ++next_seq_;
  ++checkpoints_written_;

  auto existing = list_snapshots(config_.directory);
  while (existing.size() > config_.ring_size) {
    std::error_code ec;
    fs::remove(existing.front().second, ec);
    existing.erase(existing.begin());
  }
  return path;
}

std::optional<Snapshot> RecoveryManager::recover(RecoveryReport* report) {
  auto& metrics = PersistMetrics::get();
  ScopedTimer timer(metrics.recover_latency);
  metrics.recoveries.inc();
  RecoveryReport local;
  RecoveryReport& out = report ? *report : local;
  out = RecoveryReport{};

  auto existing = list_snapshots(config_.directory);
  for (auto it = existing.rbegin(); it != existing.rend(); ++it) {
    const std::string& path = it->second;
    std::string last_reason;
    for (std::size_t attempt = 0; attempt < config_.max_retries; ++attempt) {
      try {
        Snapshot snapshot = load_snapshot(path);
        out.recovered_path = path;
        return snapshot;
      } catch (const Error& e) {
        last_reason = e.what();
        // Corruption is permanent: the file's bytes won't change, so
        // retrying only makes sense for transient open/read failures.
        if (last_reason.find("cannot open") == std::string::npos &&
            last_reason.find("cannot read") == std::string::npos) {
          break;
        }
        if (attempt + 1 < config_.max_retries && config_.backoff_ms > 0.0) {
          std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
              config_.backoff_ms));
        }
      }
    }
    out.rejected.push_back({path, last_reason});
    metrics.rejected.inc();
    obs::events().warn("persist", "snapshot rejected during recovery", 0,
                       {{"path", path}, {"reason", last_reason}});
  }
  out.cold_start = true;
  metrics.cold_starts.inc();
  return std::nullopt;
}

std::vector<std::string> RecoveryManager::ring() const {
  std::vector<std::string> paths;
  for (auto& [seq, path] : list_snapshots(config_.directory)) {
    paths.push_back(path);
  }
  return paths;
}

}  // namespace fadewich::persist
