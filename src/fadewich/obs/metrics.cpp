#include "fadewich/obs/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "fadewich/common/error.hpp"

namespace fadewich::obs {

namespace detail {

std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShardCount;
  return slot;
}

HistogramImpl::HistogramImpl(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw Error("obs histogram: bucket bounds must be non-empty");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw Error("obs histogram: bucket bounds must be increasing");
    }
  }
  shards_.reserve(kShardCount);
  for (std::size_t i = 0; i < kShardCount; ++i) {
    shards_.push_back(std::make_unique<Shard>(bounds_.size() + 1));
  }
}

void HistogramImpl::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // +inf == size()
  Shard& shard = *shards_[shard_index()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  add_double(shard.sum, v);
}

std::vector<std::uint64_t> HistogramImpl::merged_counts() const {
  std::vector<std::uint64_t> merged(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (std::size_t b = 0; b < merged.size(); ++b) {
      merged[b] += shard->counts[b].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

std::uint64_t HistogramImpl::count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->count.load(std::memory_order_relaxed);
  }
  return total;
}

double HistogramImpl::sum() const {
  double total = 0.0;
  for (const auto& shard : shards_) {
    total += shard->sum.load(std::memory_order_relaxed);
  }
  return total;
}

void HistogramImpl::reset() {
  for (auto& shard : shards_) {
    for (auto& c : shard->counts) c.store(0, std::memory_order_relaxed);
    shard->count.store(0, std::memory_order_relaxed);
    shard->sum.store(0.0, std::memory_order_relaxed);
  }
}

}  // namespace detail

double HistogramSample::percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const std::uint64_t in_bucket = counts[b];
    if (in_bucket == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) >= rank) {
      if (b >= bounds.size()) return bounds.back();  // +inf bucket: clamp
      const double lo = b == 0 ? std::min(0.0, bounds[0]) : bounds[b - 1];
      const double hi = bounds[b];
      const double frac =
          (rank - before) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
  }
  return bounds.back();
}

namespace {

template <typename Samples>
const typename Samples::value_type* find_by_name(const Samples& samples,
                                                 const std::string& name) {
  for (const auto& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace

const CounterSample* MetricsSnapshot::find_counter(
    const std::string& name) const {
  return find_by_name(counters, name);
}

const GaugeSample* MetricsSnapshot::find_gauge(
    const std::string& name) const {
  return find_by_name(gauges, name);
}

const HistogramSample* MetricsSnapshot::find_histogram(
    const std::string& name) const {
  return find_by_name(histograms, name);
}

std::vector<double> default_bucket_bounds() {
  if (const char* env = std::getenv("FADEWICH_OBS_BUCKETS")) {
    std::vector<double> bounds;
    std::istringstream in(env);
    std::string token;
    bool valid = true;
    while (std::getline(in, token, ',')) {
      char* end = nullptr;
      const double v = std::strtod(token.c_str(), &end);
      if (end == token.c_str() || *end != '\0' ||
          (!bounds.empty() && v <= bounds.back())) {
        valid = false;
        break;
      }
      bounds.push_back(v);
    }
    if (valid && !bounds.empty()) return bounds;
    // Malformed config degrades to the built-in ladder rather than
    // aborting a deployment over a telemetry knob.
  }
  // 1-2.5-5 ladder, 1 µs .. 10 s: covers per-tick latencies through
  // checkpoint writes.
  return {1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
          1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1,  0.25,   0.5,
          1.0,  2.5,    5.0,  10.0};
}

void MetricsRegistry::check_unique(const std::string& name,
                                   const char* type) const {
  const bool is_counter = counters_.count(name) > 0;
  const bool is_gauge = gauges_.count(name) > 0;
  const bool is_histogram = histograms_.count(name) > 0;
  const std::string want(type);
  if ((is_counter && want != "counter") ||
      (is_gauge && want != "gauge") ||
      (is_histogram && want != "histogram")) {
    throw Error("obs registry: metric '" + name +
                "' already registered as a different type");
  }
}

Counter MetricsRegistry::counter(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_unique(name, "counter");
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    auto family = std::make_unique<CounterFamily>();
    family->help = help;
    it = counters_.emplace(name, std::move(family)).first;
  }
  return Counter(&it->second->impl);
}

Gauge MetricsRegistry::gauge(const std::string& name,
                             const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_unique(name, "gauge");
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    auto family = std::make_unique<GaugeFamily>();
    family->help = help;
    it = gauges_.emplace(name, std::move(family)).first;
  }
  return Gauge(&it->second->impl);
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     const std::string& help,
                                     std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_unique(name, "histogram");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = default_bucket_bounds();
    it = histograms_
             .emplace(name, std::make_unique<HistogramFamily>(
                                help, std::move(bounds)))
             .first;
  }
  return Histogram(&it->second->impl);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, family] : counters_) {
    snap.counters.push_back({name, family->help, family->impl.total()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, family] : gauges_) {
    snap.gauges.push_back({name, family->help, family->impl.value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, family] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    sample.help = family->help;
    sample.bounds = family->impl.bounds();
    sample.counts = family->impl.merged_counts();
    sample.count = family->impl.count();
    sample.sum = family->impl.sum();
    snap.histograms.push_back(std::move(sample));
  }
  // std::map iteration is already name-sorted.
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, family] : counters_) family->impl.reset();
  for (auto& [name, family] : gauges_) family->impl.reset();
  for (auto& [name, family] : histograms_) family->impl.reset();
}

std::size_t MetricsRegistry::family_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace fadewich::obs
