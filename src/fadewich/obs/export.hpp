// Exporters: Prometheus text format and JSON snapshots, plus the unified
// ScrapeReport.
//
// A ScrapeReport is the one-call health surface: the merged metrics
// snapshot, any number of named HealthBlocks (bespoke counter structs —
// net::StationHealth, the supervisor's HealthReport — flattened to
// key/number pairs by their owning modules), recent structured events,
// and the finished trace spans.  Both exporters render the same report:
//
//   to_prometheus(): `# HELP` / `# TYPE` / sample lines; histograms as
//     cumulative `_bucket{le=...}` + `_sum` + `_count`; health blocks as
//     gauges named fadewich_health_<block>_<field>.  Metric names may
//     carry a `{label="x"}` suffix which is merged into the sample's
//     label set.
//   to_json(): one document with "metrics", "health", "events", "spans"
//     sections; histograms carry count/sum/p50/p95/p99 plus raw buckets.
#pragma once

#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fadewich/obs/event_log.hpp"
#include "fadewich/obs/metrics.hpp"
#include "fadewich/obs/trace.hpp"

namespace fadewich::obs {

/// Escape a label value for the Prometheus exposition format: backslash,
/// double quote, and newline become \\, \" and \n.
std::string escape_label_value(std::string_view value);

/// Build `base{k1="v1",k2="v2"}` — the registry family key the exporters
/// split back into base name and label set — with values escaped.  Label
/// names must be legal identifiers; values may hold anything.  This is
/// the one sanctioned way to mint per-entity series (per-office fleet
/// labels, per-class counters): hand-concatenation skips the escaping.
std::string labeled(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels);

/// A bespoke health struct flattened for export.  Field order is
/// preserved in both output formats.
struct HealthBlock {
  std::string name;  // e.g. "station", "supervisor"
  std::vector<std::pair<std::string, double>> fields;

  void add(std::string field, double value) {
    fields.emplace_back(std::move(field), value);
  }
};

std::string to_prometheus(const MetricsSnapshot& snapshot);
std::string to_json(const MetricsSnapshot& snapshot);

struct ScrapeReport {
  MetricsSnapshot metrics;
  std::vector<HealthBlock> health;
  std::vector<Event> events;
  std::vector<Span> spans;

  const HealthBlock* find_block(const std::string& name) const;

  std::string to_prometheus() const;
  std::string to_json() const;
};

/// Capture the registry (global by default) plus, when given, the event
/// ring and finished spans.  Modules' bespoke health structs are folded
/// in afterwards via ScrapeReport::health (see net::health_block,
/// persist::health_block, or persist::SupervisedSystem::scrape for the
/// fully-assembled document).
ScrapeReport scrape(const MetricsRegistry& registry = MetricsRegistry::global(),
                    const EventLog* events = nullptr,
                    const Tracer* tracer = nullptr);

}  // namespace fadewich::obs
