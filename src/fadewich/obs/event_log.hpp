// Structured event log: severity-levelled, bounded, JSON-lines friendly.
//
// Events are small structured records — a component, a message, a tick,
// and optional key/value fields — kept in a bounded ring buffer (oldest
// evicted, eviction counted) so a chatty deployment can always show its
// recent history without unbounded memory.  An optional sink stream
// receives every accepted event immediately as one JSON line, which is
// the durable export path (FADEWICH_OBS_SINK wires a file to the global
// log).  Events below the minimum severity are filtered before they cost
// anything; the runtime obs toggle gates the whole call.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "fadewich/common/time.hpp"
#include "fadewich/obs/toggle.hpp"

namespace fadewich::obs {

enum class Severity { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

namespace detail {
/// Append `s` to `out` with JSON string escaping (shared by the event
/// log's JSONL lines and the exporters).
void append_json_escaped(std::string& out, const std::string& s);
}  // namespace detail

const char* severity_name(Severity severity);

using EventFields = std::vector<std::pair<std::string, std::string>>;

struct Event {
  std::uint64_t seq = 0;  // monotone per log, survives ring eviction
  Severity severity = Severity::kInfo;
  Tick tick = 0;
  std::string component;
  std::string message;
  EventFields fields;
};

/// One event as a JSON line (no trailing newline); strings are escaped.
std::string to_json_line(const Event& event);

class EventLog {
 public:
  struct Config {
    std::size_t capacity = 1024;  // ring size, >= 1
    Severity min_severity = Severity::kInfo;
  };

  EventLog();
  explicit EventLog(Config config);

  /// Record an event.  Filtered by min_severity and the runtime toggle;
  /// accepted events enter the ring (evicting the oldest past capacity)
  /// and are written to the sink, if any, as one JSON line.
  void log(Severity severity, std::string component, std::string message,
           Tick tick = 0, EventFields fields = {});

  void debug(std::string component, std::string message, Tick tick = 0,
             EventFields fields = {}) {
    log(Severity::kDebug, std::move(component), std::move(message), tick,
        std::move(fields));
  }
  void info(std::string component, std::string message, Tick tick = 0,
            EventFields fields = {}) {
    log(Severity::kInfo, std::move(component), std::move(message), tick,
        std::move(fields));
  }
  void warn(std::string component, std::string message, Tick tick = 0,
            EventFields fields = {}) {
    log(Severity::kWarn, std::move(component), std::move(message), tick,
        std::move(fields));
  }
  void error(std::string component, std::string message, Tick tick = 0,
             EventFields fields = {}) {
    log(Severity::kError, std::move(component), std::move(message), tick,
        std::move(fields));
  }

  /// Ring contents, oldest first.
  std::vector<Event> recent() const;

  std::uint64_t accepted() const;  // events that entered the ring
  std::uint64_t evicted() const;   // events pushed out by capacity

  /// Stream receiving accepted events as JSON lines; nullptr disables.
  /// The stream must outlive the log (or a subsequent set_sink(nullptr)).
  void set_sink(std::ostream* sink);

  void set_min_severity(Severity severity);

  void clear();

  /// Process-wide log the built-in instrumentation writes to.  On first
  /// use, FADEWICH_OBS_SINK=<path> attaches an append-mode file sink.
  static EventLog& global();

 private:
  Config config_;
  mutable std::mutex mutex_;
  std::deque<Event> ring_;
  std::ostream* sink_ = nullptr;
  std::uint64_t next_seq_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace fadewich::obs
