// Umbrella header for the observability subsystem: metrics, tracing,
// structured events, exporters, and the process-wide instances the
// built-in instrumentation writes to.
//
// Quick tour (see DESIGN.md §12 for the full model):
//
//   obs::Counter ticks = obs::registry().counter(
//       "fadewich_core_steps_total", "pipeline ticks processed");
//   ticks.inc();                              // lock-free, sharded
//
//   auto span = obs::tracer().scope("evaluate_security");
//
//   obs::events().warn("station", "row evicted", tick);
//
//   obs::ScrapeReport report = obs::scrape(
//       obs::registry(), &obs::events(), &obs::tracer());
//   std::cout << report.to_prometheus();      // or report.to_json()
//
// Environment: FADEWICH_OBS=0 disables at runtime, FADEWICH_OBS_SINK
// appends events to a JSONL file, FADEWICH_OBS_BUCKETS overrides the
// default histogram ladder.  Compiling with -DFADEWICH_OBS_DISABLE
// removes instrumentation bodies entirely.
#pragma once

#include "fadewich/obs/event_log.hpp"
#include "fadewich/obs/export.hpp"
#include "fadewich/obs/metrics.hpp"
#include "fadewich/obs/toggle.hpp"
#include "fadewich/obs/trace.hpp"

namespace fadewich::obs {

/// Process-wide registry, event log, and tracer.  Instrumented modules
/// fetch their handles from these on first use; tests may reset() the
/// registry or clear() the log between cases.
inline MetricsRegistry& registry() { return MetricsRegistry::global(); }
inline EventLog& events() { return EventLog::global(); }
inline Tracer& tracer() { return Tracer::global(); }

}  // namespace fadewich::obs
