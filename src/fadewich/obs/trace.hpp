// Nested spans with deterministic ids.
//
// A span id is a pure function of the trace structure — the root seed,
// the parent's id, the span's name, and its sibling index under that
// parent — mixed with the same SplitMix64 finaliser the exec engine's
// task seeding uses.  Wall time never feeds the id, so two runs that open
// the same spans in the same order produce identical ids regardless of
// FADEWICH_THREADS, machine load, or clock resolution; only the recorded
// durations differ.  That makes span ids usable as stable join keys when
// diffing traces across runs or thread counts.
//
// A Tracer tracks one logical call tree and is intended for a single
// orchestration thread (the evaluation driver, the supervised pipeline's
// tick loop); concurrent begin/end from many threads would interleave the
// nesting.  Internal state is mutex-guarded so mistakes surface as odd
// trees, not data races.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace fadewich::obs {

struct Span {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 for roots
  std::string name;
  std::size_t depth = 0;     // 0 for roots
  double wall_ms = 0.0;      // measured duration (non-deterministic)
};

/// The structural id mix: SplitMix64 finaliser over (parent ^ name hash,
/// sibling index).  Exposed for tests and for modules that want ids
/// consistent with the tracer's without opening spans.
std::uint64_t span_id(std::uint64_t parent, const std::string& name,
                      std::uint64_t sibling_index);

class Tracer {
 public:
  explicit Tracer(std::uint64_t root_seed = 0xFADE)
      : root_seed_(root_seed) {}

  /// Open a span under the innermost open span (or as a root).  Returns
  /// the span's deterministic id.
  std::uint64_t begin_span(const std::string& name);

  /// Close the innermost open span; throws fadewich::Error when no span
  /// is open.
  void end_span();

  /// RAII guard for begin/end pairing.
  class Scope {
   public:
    explicit Scope(Tracer& tracer, const std::string& name)
        : tracer_(&tracer) {
      tracer_->begin_span(name);
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { tracer_->end_span(); }

   private:
    Tracer* tracer_;
  };

  Scope scope(const std::string& name) { return Scope(*this, name); }

  /// Closed spans, in completion order (children before their parent).
  std::vector<Span> finished() const;

  std::size_t open_depth() const;

  /// Drop finished spans and reset sibling numbering; open spans must
  /// all be closed first (throws fadewich::Error otherwise).
  void clear();

  /// Process-wide tracer used by the built-in instrumentation; single
  /// orchestration thread by convention.
  static Tracer& global();

 private:
  struct Frame {
    std::uint64_t id = 0;
    std::string name;
    std::uint64_t children = 0;  // sibling index generator
    double start_ms = 0.0;
  };

  std::uint64_t root_seed_;
  mutable std::mutex mutex_;
  std::vector<Frame> stack_;
  std::uint64_t root_children_ = 0;
  std::vector<Span> finished_;
};

}  // namespace fadewich::obs
