#include "fadewich/obs/event_log.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "fadewich/common/error.hpp"

namespace fadewich::obs {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kDebug: return "debug";
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "unknown";
}

namespace detail {

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace detail

std::string to_json_line(const Event& event) {
  std::string out;
  out += "{\"seq\":" + std::to_string(event.seq);
  out += ",\"severity\":\"";
  out += severity_name(event.severity);
  out += "\",\"tick\":" + std::to_string(event.tick);
  out += ",\"component\":\"";
  detail::append_json_escaped(out, event.component);
  out += "\",\"message\":\"";
  detail::append_json_escaped(out, event.message);
  out += "\"";
  for (const auto& [key, value] : event.fields) {
    out += ",\"";
    detail::append_json_escaped(out, key);
    out += "\":\"";
    detail::append_json_escaped(out, value);
    out += "\"";
  }
  out += "}";
  return out;
}

EventLog::EventLog() : EventLog(Config{}) {}

EventLog::EventLog(Config config) : config_(config) {
  if (config_.capacity < 1) {
    throw Error("obs event log: capacity must be >= 1");
  }
}

void EventLog::log(Severity severity, std::string component,
                   std::string message, Tick tick, EventFields fields) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (severity < config_.min_severity) return;
  Event event;
  event.seq = next_seq_++;
  event.severity = severity;
  event.tick = tick;
  event.component = std::move(component);
  event.message = std::move(message);
  event.fields = std::move(fields);
  if (sink_ != nullptr) {
    *sink_ << to_json_line(event) << '\n';
  }
  ring_.push_back(std::move(event));
  while (ring_.size() > config_.capacity) {
    ring_.pop_front();
    ++evicted_;
  }
}

std::vector<Event> EventLog::recent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::uint64_t EventLog::accepted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

std::uint64_t EventLog::evicted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evicted_;
}

void EventLog::set_sink(std::ostream* sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = sink;
}

void EventLog::set_min_severity(Severity severity) {
  std::lock_guard<std::mutex> lock(mutex_);
  config_.min_severity = severity;
}

void EventLog::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_seq_ = 0;
  evicted_ = 0;
}

EventLog& EventLog::global() {
  // The sink is declared before the log so it is destroyed after it —
  // the log can never write to a dead stream, even from static
  // destructors.
  static std::ofstream sink;
  static EventLog log;
  static const bool wired = [] {
    if (const char* path = std::getenv("FADEWICH_OBS_SINK")) {
      sink.open(path, std::ios::app);
      if (sink) log.set_sink(&sink);
    }
    return true;
  }();
  (void)wired;
  return log;
}

}  // namespace fadewich::obs
