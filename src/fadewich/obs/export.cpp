#include "fadewich/obs/export.hpp"

#include <cstdio>
#include <limits>
#include <string>

#include "fadewich/common/simd.hpp"

namespace fadewich::obs {

namespace {

/// Locale-independent shortest-ish double rendering (both exporters).
std::string fmt_number(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v > -1e15 && v < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Split `fadewich_x_total{label="2"}` into base name and the inner
/// label list (empty when the name carries no labels).
std::pair<std::string, std::string> split_labels(const std::string& name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    return {name, ""};
  }
  return {name.substr(0, brace),
          name.substr(brace + 1, name.size() - brace - 2)};
}

void append_help_type(std::string& out, const std::string& base,
                      const std::string& help, const char* type,
                      std::string& last_base) {
  if (base == last_base) return;  // one header per family of label variants
  last_base = base;
  if (!help.empty()) {
    out += "# HELP " + base + " " + help + "\n";
  }
  out += "# TYPE " + base + " ";
  out += type;
  out += "\n";
}

std::string join_labels(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return a + "," + b;
}

std::string sample_line(const std::string& base, const std::string& labels,
                        const std::string& value) {
  if (labels.empty()) return base + " " + value + "\n";
  return base + "{" + labels + "} " + value + "\n";
}

void append_json_kv(std::string& out, const std::string& key,
                    const std::string& rendered_value, bool& first) {
  if (!first) out += ",";
  first = false;
  out += "\"";
  detail::append_json_escaped(out, key);
  out += "\":" + rendered_value;
}

}  // namespace

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string labeled(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  std::string out(base);
  if (labels.size() == 0) return out;
  out += "{";
  bool first = true;
  for (const auto& [name, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += name;
    out += "=\"";
    out += escape_label_value(value);
    out += "\"";
  }
  out += "}";
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_base;
  for (const CounterSample& c : snapshot.counters) {
    const auto [base, labels] = split_labels(c.name);
    append_help_type(out, base, c.help, "counter", last_base);
    out += sample_line(base, labels, std::to_string(c.value));
  }
  last_base.clear();
  for (const GaugeSample& g : snapshot.gauges) {
    const auto [base, labels] = split_labels(g.name);
    append_help_type(out, base, g.help, "gauge", last_base);
    out += sample_line(base, labels, fmt_number(g.value));
  }
  last_base.clear();
  for (const HistogramSample& h : snapshot.histograms) {
    const auto [base, labels] = split_labels(h.name);
    append_help_type(out, base, h.help, "histogram", last_base);
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      cumulative += h.counts[b];
      const std::string le =
          b < h.bounds.size() ? fmt_number(h.bounds[b]) : "+Inf";
      out += sample_line(base + "_bucket",
                         join_labels(labels, "le=\"" + le + "\""),
                         std::to_string(cumulative));
    }
    out += sample_line(base + "_sum", labels, fmt_number(h.sum));
    out += sample_line(base + "_count", labels, std::to_string(h.count));
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const CounterSample& c : snapshot.counters) {
    append_json_kv(out, c.name, std::to_string(c.value), first);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const GaugeSample& g : snapshot.gauges) {
    append_json_kv(out, g.name, fmt_number(g.value), first);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSample& h : snapshot.histograms) {
    std::string value = "{\"count\":" + std::to_string(h.count) +
                        ",\"sum\":" + fmt_number(h.sum) +
                        ",\"mean\":" + fmt_number(h.mean()) +
                        ",\"p50\":" + fmt_number(h.percentile(0.50)) +
                        ",\"p95\":" + fmt_number(h.percentile(0.95)) +
                        ",\"p99\":" + fmt_number(h.percentile(0.99)) +
                        ",\"buckets\":[";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      cumulative += h.counts[b];
      if (b > 0) value += ",";
      value += "{\"le\":";
      value += b < h.bounds.size()
                   ? fmt_number(h.bounds[b])
                   : std::string("\"+Inf\"");
      value += ",\"count\":" + std::to_string(cumulative) + "}";
    }
    value += "]}";
    append_json_kv(out, h.name, value, first);
  }
  out += "}}";
  return out;
}

const HealthBlock* ScrapeReport::find_block(const std::string& name) const {
  for (const HealthBlock& block : health) {
    if (block.name == name) return &block;
  }
  return nullptr;
}

std::string ScrapeReport::to_prometheus() const {
  std::string out = obs::to_prometheus(metrics);
  for (const HealthBlock& block : health) {
    for (const auto& [field, value] : block.fields) {
      const std::string name =
          "fadewich_health_" + block.name + "_" + field;
      out += "# TYPE " + name + " gauge\n";
      out += name + " " + fmt_number(value) + "\n";
    }
  }
  return out;
}

std::string ScrapeReport::to_json() const {
  std::string out = "{\"metrics\":" + obs::to_json(metrics);
  out += ",\"health\":{";
  bool first_block = true;
  for (const HealthBlock& block : health) {
    std::string value = "{";
    bool first = true;
    for (const auto& [field, v] : block.fields) {
      append_json_kv(value, field, fmt_number(v), first);
    }
    value += "}";
    append_json_kv(out, block.name, value, first_block);
  }
  out += "},\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out += ",";
    out += to_json_line(events[i]);
  }
  out += "],\"spans\":[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    if (i > 0) out += ",";
    out += "{\"id\":\"" + std::to_string(s.id) + "\",\"parent\":\"" +
           std::to_string(s.parent) + "\",\"name\":\"";
    detail::append_json_escaped(out, s.name);
    out += "\",\"depth\":" + std::to_string(s.depth) +
           ",\"wall_ms\":" + fmt_number(s.wall_ms) + "}";
  }
  out += "]}";
  return out;
}

ScrapeReport scrape(const MetricsRegistry& registry, const EventLog* events,
                    const Tracer* tracer) {
  ScrapeReport report;
  report.metrics = registry.snapshot();
  // The kernel dispatch is resolved once per process, outside any
  // registry; stamp it into every scrape so dashboards can tell which
  // ISA (and FADEWICH_SIMD override) a deployment is actually running.
  GaugeSample isa;
  isa.name = std::string("fadewich_simd_isa{isa=\"") +
             simd::isa_name(simd::active_isa()) + "\"}";
  isa.help = "active SIMD kernel ISA (0=scalar, 1=sse2, 2=neon, 3=avx2)";
  isa.value = static_cast<double>(simd::active_isa());
  report.metrics.gauges.push_back(std::move(isa));
  if (events != nullptr) report.events = events->recent();
  if (tracer != nullptr) report.spans = tracer->finished();
  return report;
}

}  // namespace fadewich::obs
