#include "fadewich/obs/toggle.hpp"

#if !defined(FADEWICH_OBS_DISABLE)

#include <atomic>
#include <cstdlib>
#include <string>

namespace fadewich::obs {

namespace {

bool env_default() {
  const char* env = std::getenv("FADEWICH_OBS");
  if (env == nullptr) return true;
  const std::string value(env);
  return value != "0" && value != "off" && value != "OFF";
}

std::atomic<bool>& state() {
  // Meyers singleton: lazily initialised on first use, so the env read
  // happens exactly once and never during static-init races.
  static std::atomic<bool> on{env_default()};
  return on;
}

}  // namespace

bool enabled() { return state().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  state().store(on, std::memory_order_relaxed);
}

}  // namespace fadewich::obs

#endif  // !FADEWICH_OBS_DISABLE
