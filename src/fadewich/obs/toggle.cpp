#include "fadewich/obs/toggle.hpp"

#if !defined(FADEWICH_OBS_DISABLE)

#include <atomic>

#include "fadewich/common/env.hpp"

namespace fadewich::obs {

namespace {

bool env_default() {
  // Strict: FADEWICH_OBS must be a recognised boolean.  A typo used to
  // silently leave telemetry on; now it throws fadewich::Error from the
  // first instrumented call, which is loud but unambiguous.
  return common::env_flag("FADEWICH_OBS").value_or(true);
}

std::atomic<bool>& state() {
  // Meyers singleton: lazily initialised on first use, so the env read
  // happens exactly once and never during static-init races.
  static std::atomic<bool> on{env_default()};
  return on;
}

}  // namespace

bool enabled() { return state().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  state().store(on, std::memory_order_relaxed);
}

}  // namespace fadewich::obs

#endif  // !FADEWICH_OBS_DISABLE
