// Observability kill switches.
//
// Instrumentation is gated twice.  At compile time, defining
// FADEWICH_OBS_DISABLE turns every metric handle and event-log call into
// an empty inline body, so a build that wants zero telemetry pays zero
// instructions.  At runtime (the default build), every instrumented site
// first checks enabled() — one relaxed atomic load — so a deployment can
// switch telemetry off without rebuilding.  The initial value comes from
// the FADEWICH_OBS environment variable ("0" or "off" disables; anything
// else, including unset, enables) and can be flipped programmatically.
#pragma once

namespace fadewich::obs {

#if defined(FADEWICH_OBS_DISABLE)
inline constexpr bool kCompiledIn = false;
inline bool enabled() { return false; }
inline void set_enabled(bool) {}
#else
inline constexpr bool kCompiledIn = true;

/// Runtime toggle: one relaxed atomic load, safe from any thread.
bool enabled();

/// Flip the runtime toggle.  Visible to all threads; in-flight metric
/// updates on other threads may still land for a few instructions.
void set_enabled(bool on);
#endif

}  // namespace fadewich::obs
