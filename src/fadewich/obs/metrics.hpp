// Lock-cheap metrics: counters, gauges, and fixed-bucket histograms.
//
// Hot-path updates never take a lock.  Counters and histograms are
// sharded: each family owns kShardCount cache-line-aligned shards of
// relaxed atomics, and every thread hashes to a fixed shard on its first
// update, so concurrent writers from a thread pool almost never contend
// on the same line.  Shards are merged only on scrape (snapshot()), which
// is the rare path.  Gauges are a single relaxed atomic double — they are
// set, not accumulated, so sharding would only blur "latest wins".
//
// Handles (Counter, Gauge, Histogram) are trivially-copyable pointers
// into registry-owned families; they stay valid for the registry's
// lifetime and their update methods compile to nothing when
// FADEWICH_OBS_DISABLE is defined and to a relaxed load + branch when the
// runtime toggle is off.
//
// Naming scheme (see DESIGN.md §12): fadewich_<module>_<what>, with
// `_total` for counters and `_seconds` for time histograms.  A name may
// carry a Prometheus label suffix, e.g. `fadewich_re_classified_total{label="2"}`
// — the exporters split base name and labels; the registry treats the
// full string as the family key.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fadewich/obs/toggle.hpp"

namespace fadewich::obs {

/// Shards per family.  Power of two; 16 lines ≈ 1 KiB per counter family,
/// enough to keep a machine-sized thread pool contention-free.
inline constexpr std::size_t kShardCount = 16;

namespace detail {

/// The calling thread's fixed shard slot, assigned round-robin on first
/// use so pool workers spread evenly.
std::size_t shard_index();

/// Relaxed accumulating add for atomic<double> (CAS loop: portable where
/// fetch_add on floating atomics is not).
inline void add_double(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v,
                                  std::memory_order_relaxed)) {
  }
}

struct alignas(64) CounterShard {
  std::atomic<std::uint64_t> value{0};
};

class CounterImpl {
 public:
  void add(std::uint64_t n) {
    shards_[shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const CounterShard& s : shards_) {
      sum += s.value.load(std::memory_order_relaxed);
    }
    return sum;
  }
  void reset() {
    for (CounterShard& s : shards_) {
      s.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  std::array<CounterShard, kShardCount> shards_;
};

class GaugeImpl {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double v) { add_double(value_, v); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

class HistogramImpl {
 public:
  /// `bounds` are strictly-increasing inclusive upper bucket bounds; an
  /// implicit +inf bucket is appended.  Requires non-empty bounds.
  explicit HistogramImpl(std::vector<double> bounds);

  void observe(double v);
  std::vector<std::uint64_t> merged_counts() const;  // bounds.size() + 1
  std::uint64_t count() const;
  double sum() const;
  const std::vector<double>& bounds() const { return bounds_; }
  void reset();

 private:
  struct alignas(64) Shard {
    explicit Shard(std::size_t buckets)
        : counts(buckets) {}
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace detail

/// Monotonic event counter handle.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n) const {
#if !defined(FADEWICH_OBS_DISABLE)
    if (impl_ != nullptr && enabled()) impl_->add(n);
#else
    (void)n;
#endif
  }
  void inc() const { add(1); }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterImpl* impl) : impl_(impl) {}
  detail::CounterImpl* impl_ = nullptr;
};

/// Latest-value handle (queue depth, buffered rows, ...).
class Gauge {
 public:
  Gauge() = default;
  void set(double v) const {
#if !defined(FADEWICH_OBS_DISABLE)
    if (impl_ != nullptr && enabled()) impl_->set(v);
#else
    (void)v;
#endif
  }
  void add(double v) const {
#if !defined(FADEWICH_OBS_DISABLE)
    if (impl_ != nullptr && enabled()) impl_->add(v);
#else
    (void)v;
#endif
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::GaugeImpl* impl) : impl_(impl) {}
  detail::GaugeImpl* impl_ = nullptr;
};

/// Fixed-bucket distribution handle.
class Histogram {
 public:
  Histogram() = default;
  void observe(double v) const {
#if !defined(FADEWICH_OBS_DISABLE)
    if (impl_ != nullptr && enabled()) impl_->observe(v);
#else
    (void)v;
#endif
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramImpl* impl) : impl_(impl) {}
  detail::HistogramImpl* impl_ = nullptr;
};

// --- Scrape-side value types -----------------------------------------

struct CounterSample {
  std::string name;
  std::string help;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::string help;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::string help;
  std::vector<double> bounds;          // upper bounds, +inf implicit
  std::vector<std::uint64_t> counts;   // per bucket, bounds.size() + 1
  std::uint64_t count = 0;
  double sum = 0.0;

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  /// Quantile estimate (q in [0, 1]) by linear interpolation inside the
  /// bucket holding the target rank; values in the +inf bucket clamp to
  /// the last finite bound.  0 when empty.
  double percentile(double q) const;
};

/// Point-in-time merge of every family, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  const CounterSample* find_counter(const std::string& name) const;
  const GaugeSample* find_gauge(const std::string& name) const;
  const HistogramSample* find_histogram(const std::string& name) const;
};

/// Default histogram bucket bounds: the FADEWICH_OBS_BUCKETS environment
/// variable (comma-separated increasing doubles) when set and valid,
/// otherwise a 1-2.5-5 latency ladder from 1 µs to 10 s.
std::vector<double> default_bucket_bounds();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Fetch-or-create a family.  Repeated calls with the same name return
  /// handles to the same family (help from the first call wins); a name
  /// already registered as a different metric type throws fadewich::Error.
  Counter counter(const std::string& name, const std::string& help = "");
  Gauge gauge(const std::string& name, const std::string& help = "");
  /// Empty `bounds` means default_bucket_bounds(); otherwise bounds must
  /// be strictly increasing (throws fadewich::Error).
  Histogram histogram(const std::string& name, const std::string& help = "",
                      std::vector<double> bounds = {});

  /// Merge every shard of every family into a consistent-enough snapshot
  /// (each value is atomically read; cross-metric skew is permitted).
  MetricsSnapshot snapshot() const;

  /// Zero every family's value.  Families — and outstanding handles —
  /// stay valid.
  void reset();

  std::size_t family_count() const;

  /// Process-wide registry the built-in instrumentation writes to.
  static MetricsRegistry& global();

 private:
  struct CounterFamily {
    std::string help;
    detail::CounterImpl impl;
  };
  struct GaugeFamily {
    std::string help;
    detail::GaugeImpl impl;
  };
  struct HistogramFamily {
    std::string help;
    detail::HistogramImpl impl;
    explicit HistogramFamily(std::string h, std::vector<double> bounds)
        : help(std::move(h)), impl(std::move(bounds)) {}
  };

  void check_unique(const std::string& name, const char* type) const;

  mutable std::mutex mutex_;  // guards the family maps, not the values
  std::map<std::string, std::unique_ptr<CounterFamily>> counters_;
  std::map<std::string, std::unique_ptr<GaugeFamily>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramFamily>> histograms_;
};

}  // namespace fadewich::obs
