#include "fadewich/obs/trace.hpp"

#include <chrono>

#include "fadewich/common/error.hpp"

namespace fadewich::obs {

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

// SplitMix64 finaliser — the same mixing exec::task_seed applies, kept
// local because obs sits below exec in the module DAG.
std::uint64_t mix64(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::uint64_t span_id(std::uint64_t parent, const std::string& name,
                      std::uint64_t sibling_index) {
  std::uint64_t id = mix64(parent ^ fnv1a(name), sibling_index);
  if (id == 0) id = 1;  // 0 is reserved for "no parent"
  return id;
}

std::uint64_t Tracer::begin_span(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t parent =
      stack_.empty() ? root_seed_ : stack_.back().id;
  std::uint64_t& siblings =
      stack_.empty() ? root_children_ : stack_.back().children;
  Frame frame;
  frame.id = span_id(parent, name, siblings++);
  frame.name = name;
  frame.start_ms = now_ms();
  stack_.push_back(std::move(frame));
  return stack_.back().id;
}

void Tracer::end_span() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stack_.empty()) {
    throw Error("obs tracer: end_span with no open span");
  }
  Frame frame = std::move(stack_.back());
  stack_.pop_back();
  Span span;
  span.id = frame.id;
  span.parent = stack_.empty() ? 0 : stack_.back().id;
  span.name = std::move(frame.name);
  span.depth = stack_.size();
  span.wall_ms = now_ms() - frame.start_ms;
  finished_.push_back(std::move(span));
}

std::vector<Span> Tracer::finished() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return finished_;
}

std::size_t Tracer::open_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stack_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!stack_.empty()) {
    throw Error("obs tracer: clear with spans still open");
  }
  finished_.clear();
  root_children_ = 0;
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

}  // namespace fadewich::obs
