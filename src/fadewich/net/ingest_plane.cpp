#include "fadewich/net/ingest_plane.hpp"

#include <algorithm>

#include "fadewich/common/error.hpp"
#include "fadewich/obs/obs.hpp"

namespace fadewich::net {

namespace {

// A round that neither decodes a byte nor delivers a report is stagnant;
// this many in a row means the frontier/carry invariants were broken by
// a caller bug (a misrouting router, a sink that rethrows into a lane).
constexpr std::uint64_t kStagnantRoundLimit = 1000;

constexpr std::size_t kMinRingCapacity = 256;
// 4096 slots = 64 KiB of Measurement per ring: deep enough to amortise
// the producer/consumer handoff, small enough that a round's ring
// traffic stays cache-resident — 65536-slot rings measured ~15% slower
// end-to-end because every fill/drain cycle streamed through L2.
constexpr std::size_t kMaxRingCapacity = 4096;

}  // namespace

/// One decoder worker's persistent state across rounds.  `scratch`
/// stages one frame's measurements for the ring push; when the ring
/// fills mid-frame the un-pushed suffix stays in `scratch` as the carry
/// ([carry_offset, carry_offset + carry_count) targeting carry_shard)
/// and the lane resumes there next round, so per-shard order survives
/// backpressure.
struct IngestPlane::LaneState {
  std::size_t index = 0;
  std::size_t pos = 0;
  std::size_t end = 0;
  std::vector<Measurement> scratch;
  std::size_t carry_shard = 0;
  std::size_t carry_offset = 0;
  std::size_t carry_count = 0;
  WireCounters wire;
  std::vector<PlaneShardCounters> per_shard;
  std::atomic<bool> done{false};
};

struct IngestPlane::ShardState {
  std::size_t index = 0;
  std::size_t frontier = 0;  // lane currently being consumed
  bool complete = false;
  std::uint64_t reports = 0;
};

obs::HealthBlock health_block(const PlaneCounters& counters) {
  obs::HealthBlock block = health_block(counters.wire);
  block.name = "ingest_plane";
  block.add("rounds", static_cast<double>(counters.rounds));
  block.add("reports_delivered",
            static_cast<double>(counters.reports_delivered));
  block.add("ring_full_backpressure",
            static_cast<double>(counters.ring_full_backpressure));
  return block;
}

IngestPlane::~IngestPlane() = default;

IngestPlane::IngestPlane(PlaneConfig config, exec::ThreadPool* pool)
    : config_(config),
      pool_(pool != nullptr ? pool : &exec::ThreadPool::global()) {
  // Plane configs come from env knobs and CLI flags at runtime, so
  // invalid values throw fadewich::Error rather than tripping contracts.
  if (config_.lanes < 1) throw Error("ingest plane: lanes must be >= 1");
  if (config_.shards < 1) throw Error("ingest plane: shards must be >= 1");
  if (config_.drain_batch < 1) {
    throw Error("ingest plane: drain_batch must be >= 1");
  }
  if (config_.ring_capacity > 0) {
    ring_capacity_ = config_.ring_capacity;
  } else {
    const std::size_t per_ring =
        config_.ring_budget_bytes /
        (config_.lanes * config_.shards * sizeof(Measurement));
    ring_capacity_ = std::clamp(per_ring, kMinRingCapacity,
                                kMaxRingCapacity);
  }
  const std::size_t shards = config_.shards;
  router_ = [shards](std::uint16_t station_id) {
    return static_cast<std::size_t>(station_id) % shards;
  };
  rings_.reserve(config_.lanes * shards);
  for (std::size_t i = 0; i < config_.lanes * shards; ++i) {
    rings_.push_back(std::make_unique<IngestQueue>(ring_capacity_));
  }
  lanes_.reserve(config_.lanes);
  for (std::size_t l = 0; l < config_.lanes; ++l) {
    auto lane = std::make_unique<LaneState>();
    lane->index = l;
    lane->scratch.resize(kMaxFrameReports);
    lane->per_shard.resize(shards);
    lanes_.push_back(std::move(lane));
  }
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    auto shard = std::make_unique<ShardState>();
    shard->index = s;
    shards_.push_back(std::move(shard));
  }
  counters_.per_shard.resize(shards);
  flushed_.resize(shards);

  auto& registry = obs::MetricsRegistry::global();
  ring_depth_ = registry.histogram(
      "fadewich_ingest_ring_depth",
      "Measurements queued in a (lane, shard) ring at drain time");
  // Same cardinality discipline as fleet's per-office series: labeled
  // handles only under the cap, aggregate names otherwise.
  if (config_.per_shard_series && shards <= config_.per_shard_series_cap) {
    shard_metrics_.resize(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      const std::string label = std::to_string(s);
      shard_metrics_[s].frames = registry.counter(
          obs::labeled("fadewich_ingest_shard_frames_decoded_total",
                       {{"shard", label}}),
          "CRC-valid frames routed to one shard");
      shard_metrics_[s].crc_rejected = registry.counter(
          obs::labeled("fadewich_ingest_shard_crc_rejected_total",
                       {{"shard", label}}),
          "CRC-rejected frames attributed to one shard");
      shard_metrics_[s].backpressure = registry.counter(
          obs::labeled("fadewich_ingest_shard_ring_full_total",
                       {{"shard", label}}),
          "Lane stalls on one shard's full rings");
      shard_metrics_[s].reports = registry.counter(
          obs::labeled("fadewich_ingest_shard_reports_total",
                       {{"shard", label}}),
          "Measurements delivered to one shard's sink");
    }
  } else {
    shard_metrics_.resize(1);
    shard_metrics_[0].frames = registry.counter(
        "fadewich_ingest_frames_decoded_total",
        "CRC-valid frames decoded across the plane");
    shard_metrics_[0].crc_rejected =
        registry.counter("fadewich_ingest_crc_rejected_total",
                         "CRC-rejected frames across the plane");
    shard_metrics_[0].backpressure =
        registry.counter("fadewich_ingest_ring_full_total",
                         "Lane stalls on full rings across the plane");
    shard_metrics_[0].reports =
        registry.counter("fadewich_ingest_reports_total",
                         "Measurements delivered across the plane");
  }
}

void IngestPlane::set_router(Router router) {
  if (!router) throw Error("ingest plane: router must be callable");
  router_ = std::move(router);
}

void IngestPlane::plan_lanes(std::span<const std::uint8_t> bytes) {
  // Lane l owns [boundary[l], boundary[l+1]).  Lane 0 starts at byte 0
  // (leading garbage is its resync job, as in the single-lane walk);
  // every later boundary is the first validated frame start at or after
  // the even split, so no frame straddles an ownership edge.  Boundaries
  // are non-decreasing because a hunt from a later origin can't find an
  // earlier frame; an empty lane range is legal and just finishes first.
  std::vector<std::size_t> bounds(config_.lanes + 1, 0);
  bounds[config_.lanes] = bytes.size();
  for (std::size_t l = 1; l < config_.lanes; ++l) {
    const std::size_t nominal = bytes.size() * l / config_.lanes;
    bounds[l] = std::max(bounds[l - 1],
                         find_frame_boundary(bytes, nominal));
  }
  for (std::size_t l = 0; l < config_.lanes; ++l) {
    LaneState& lane = *lanes_[l];
    lane.pos = bounds[l];
    lane.end = std::max(bounds[l + 1], bounds[l]);
    lane.carry_count = 0;
    lane.carry_offset = 0;
    lane.done.store(false, std::memory_order_relaxed);
  }
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_[s]->frontier = 0;
    shards_[s]->complete = false;
  }
}

void IngestPlane::decode_round(LaneState& lane,
                               std::span<const std::uint8_t> bytes) {
  if (lane.done.load(std::memory_order_relaxed)) return;
  // Per-round push quota: enough to fill this lane's rings from empty,
  // so a lane can't monopolise a round but high shard counts don't
  // collapse into thousands of near-empty rounds.  Capped so a huge
  // lanes x shards product still yields the round barrier regularly.
  std::size_t quota = std::min<std::size_t>(
      ring_capacity_ * config_.shards, std::size_t{1} << 20);
  if (lane.carry_count > 0) {
    IngestQueue& carry_ring = ring(lane.index, lane.carry_shard);
    const std::size_t n = carry_ring.push_some(
        {lane.scratch.data() + lane.carry_offset, lane.carry_count});
    lane.carry_offset += n;
    lane.carry_count -= n;
    quota = n >= quota ? 0 : quota - n;
    if (lane.carry_count > 0) {
      ++lane.per_shard[lane.carry_shard].ring_full_backpressure;
      return;  // still blocked; the shard drains it next round
    }
  }
  const std::span<const std::uint8_t> owned = bytes.first(lane.end);
  FrameView view;
  while (quota > 0 && lane.pos < lane.end) {
    switch (scan_frame(owned, lane.pos, view, lane.wire)) {
      case ScanOutcome::kFrame: {
        const std::size_t shard = router_(view.header.station_id);
        if (shard >= config_.shards) {
          throw Error("ingest plane: router returned shard out of range");
        }
        ++lane.per_shard[shard].frames_decoded;
        lane.pos += view.size;
        IngestQueue& dst = ring(lane.index, shard);
        // Fast path: decode straight into ring slots — no scratch
        // staging, one Measurement write per report.  Falls back to
        // scratch + carry when the contiguous free run can't take the
        // whole frame (wrap or backpressure).
        const std::span<Measurement> direct = dst.back_span(view.count);
        if (direct.size() == view.count) {
          for (std::uint16_t i = 0; i < view.count; ++i) {
            const WireReport r = view.report(i);
            direct[i] = {view.header.tx, r.rx, view.header.tick,
                         static_cast<double>(r.rssi_dbm)};
          }
          dst.publish(view.count);
          quota = view.count >= quota ? 0 : quota - view.count;
          break;
        }
        for (std::uint16_t i = 0; i < view.count; ++i) {
          const WireReport r = view.report(i);
          lane.scratch[i] = {view.header.tx, r.rx, view.header.tick,
                             static_cast<double>(r.rssi_dbm)};
        }
        const std::size_t n =
            dst.push_some({lane.scratch.data(), view.count});
        if (n < view.count) {
          lane.carry_shard = shard;
          lane.carry_offset = n;
          lane.carry_count = view.count - n;
          ++lane.per_shard[shard].ring_full_backpressure;
          return;
        }
        quota = n >= quota ? 0 : quota - n;
        break;
      }
      case ScanOutcome::kNeedMore:
        // End of this lane's range: account the tail and finish.
        lane.pos = finish_scan(owned, lane.pos, lane.wire);
        break;
      case ScanOutcome::kBadCrc:
        // Best-effort attribution from the untrusted header — bounded by
        // the router contract, never acted on beyond this counter.
        if (const std::size_t shard = router_(view.header.station_id);
            shard < config_.shards) {
          ++lane.per_shard[shard].crc_rejected;
        }
        ++lane.pos;
        break;
      default:  // kResync / kBadVersion / kBadLength
        ++lane.pos;
        break;
    }
  }
  if (lane.pos >= lane.end && lane.carry_count == 0) {
    // Release-fences every ring push: a consumer that acquires `done`
    // and then sees an empty ring has seen everything this lane made.
    lane.done.store(true, std::memory_order_release);
  }
}

void IngestPlane::drain_round(ShardState& shard, const Sink& sink) {
  if (shard.complete) return;
  // Per-round budget: a few ring-fuls, so one flooded shard can't stall
  // the round barrier for everyone else.
  std::size_t budget = 4 * ring_capacity_;
  while (true) {
    if (shard.frontier >= config_.lanes) {
      shard.complete = true;
      return;
    }
    LaneState& lane = *lanes_[shard.frontier];
    IngestQueue& front = ring(shard.frontier, shard.index);
    ring_depth_.observe(static_cast<double>(front.size()));
    // Zero-copy drain: hand the sink ring storage directly and retire it
    // after the call, instead of staging through a scratch buffer.  The
    // SPSC contract makes this safe — the producer never touches slots
    // between front_span() and consume().  A wrapped backlog shows up as
    // two successive spans across loop iterations.
    const std::size_t want = std::min(config_.drain_batch, budget);
    const std::span<const Measurement> run =
        want > 0 ? front.front_span(want)
                 : std::span<const Measurement>{};
    if (!run.empty()) {
      sink(shard.index, run);
      front.consume(run.size());
      shard.reports += run.size();
      budget -= run.size();
      if (budget == 0) return;
      continue;
    }
    if (!lane.done.load(std::memory_order_acquire)) return;
    if (front.size() != 0) continue;  // pushes published with `done`
    // The frontier lane is finished and its ring is drained: everything
    // it decoded for this shard has been delivered, in wire order.
    ++shard.frontier;
  }
}

std::uint64_t IngestPlane::progress_mark() const {
  std::uint64_t mark = 0;
  for (const auto& lane : lanes_) {
    mark += lane->pos + lane->carry_count +
            (lane->done.load(std::memory_order_relaxed) ? 1 : 0);
  }
  for (const auto& shard : shards_) {
    mark += shard->reports + shard->frontier;
  }
  return mark;
}

void IngestPlane::merge_lane_counters() {
  for (const auto& lane : lanes_) {
    WireCounters& w = counters_.wire;
    w.frames_ok += lane->wire.frames_ok;
    w.reports += lane->wire.reports;
    w.bad_version += lane->wire.bad_version;
    w.bad_length += lane->wire.bad_length;
    w.bad_crc += lane->wire.bad_crc;
    w.resync_bytes += lane->wire.resync_bytes;
    w.truncated += lane->wire.truncated;
    lane->wire = WireCounters{};
    for (std::size_t s = 0; s < config_.shards; ++s) {
      PlaneShardCounters& dst = counters_.per_shard[s];
      const PlaneShardCounters& src = lane->per_shard[s];
      dst.frames_decoded += src.frames_decoded;
      dst.crc_rejected += src.crc_rejected;
      dst.ring_full_backpressure += src.ring_full_backpressure;
      counters_.ring_full_backpressure += src.ring_full_backpressure;
      lane->per_shard[s] = PlaneShardCounters{};
    }
  }
  for (const auto& shard : shards_) {
    counters_.per_shard[shard->index].reports_delivered += shard->reports;
  }
}

void IngestPlane::flush_obs() {
  const bool labeled = shard_metrics_.size() == config_.shards;
  for (std::size_t s = 0; s < config_.shards; ++s) {
    const PlaneShardCounters& now = counters_.per_shard[s];
    PlaneShardCounters& last = flushed_[s];
    const ShardMetrics& m = shard_metrics_[labeled ? s : 0];
    m.frames.add(now.frames_decoded - last.frames_decoded);
    m.crc_rejected.add(now.crc_rejected - last.crc_rejected);
    m.backpressure.add(now.ring_full_backpressure -
                       last.ring_full_backpressure);
    m.reports.add(now.reports_delivered - last.reports_delivered);
    last = now;
  }
}

std::uint64_t IngestPlane::replay(std::span<const std::uint8_t> bytes,
                                  const Sink& sink) {
  plan_lanes(bytes);
  const std::size_t tasks = config_.lanes + config_.shards;
  const auto run_task = [&](std::size_t t) {
    if (t < config_.lanes) {
      decode_round(*lanes_[t], bytes);
    } else {
      drain_round(*shards_[t - config_.lanes], sink);
    }
  };
  std::uint64_t last_mark = progress_mark();
  std::uint64_t stagnant = 0;
  while (true) {
    ++counters_.rounds;
    if (config_.serial) {
      for (std::size_t t = 0; t < tasks; ++t) run_task(t);
    } else {
      pool_->parallel_for(0, tasks, run_task, 1);
    }
    bool all_complete = true;
    for (const auto& shard : shards_) {
      all_complete = all_complete && shard->complete;
    }
    if (all_complete) break;
    const std::uint64_t mark = progress_mark();
    stagnant = mark == last_mark ? stagnant + 1 : 0;
    last_mark = mark;
    if (stagnant > kStagnantRoundLimit) {
      throw Error("ingest plane: no progress — frontier stalled");
    }
  }
  std::uint64_t delivered = 0;
  for (auto& shard : shards_) {
    delivered += shard->reports;
  }
  merge_lane_counters();
  counters_.reports_delivered += delivered;
  flush_obs();
  for (auto& shard : shards_) shard->reports = 0;
  return delivered;
}

}  // namespace fadewich::net
