// Deterministic fault injection for the sensor reporting path.
//
// The paper assumes a reliable secure channel between sensors and the
// central station; real deployments lose, delay, and duplicate reports,
// and whole sensors drop out.  FaultInjector sits between the devices and
// the MessageBus and injects exactly those faults, per directed link:
//
//   - drop: the report never reaches the bus
//   - delay: the report is buffered and published `1..max_delay_ticks`
//     beacon rounds later (delayed traffic naturally reorders)
//   - duplicate: the report is published twice
//   - outage: a device is fully offline for a tick interval — it neither
//     beacons nor reports, so every measurement it transmits or receives
//     is dropped
//
// Determinism: each directed link owns an Rng seeded with
// exec::task_seed(seed, stream_index), and draws only for its own
// reports in report order.  Fault decisions are therefore a pure function
// of (seed, per-link report sequence) — independent of thread count, of
// other links' traffic, and of bus interleaving — so faulty runs are
// exactly reproducible.  A disabled config (all probabilities zero, no
// outages) never draws and passes reports through byte-identically.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "fadewich/common/rng.hpp"
#include "fadewich/net/measurement.hpp"
#include "fadewich/net/message_bus.hpp"
#include "fadewich/obs/export.hpp"

namespace fadewich::net {

/// One whole-sensor dropout: `device` is offline for ticks [from, to].
struct SensorOutage {
  DeviceId device = 0;
  Tick from = 0;
  Tick to = 0;
};

struct FaultConfig {
  double drop_probability = 0.0;       // per report
  double delay_probability = 0.0;      // per surviving report
  Tick max_delay_ticks = 2;            // uniform delay in [1, max]
  double duplicate_probability = 0.0;  // per surviving report
  std::vector<SensorOutage> outages;   // dropout/recovery schedule

  bool enabled() const {
    return drop_probability > 0.0 || delay_probability > 0.0 ||
           duplicate_probability > 0.0 || !outages.empty();
  }
};

class FaultInjector {
 public:
  /// Counters of every fault injected so far.
  struct Counters {
    std::uint64_t offered = 0;
    std::uint64_t dropped = 0;         // random per-report drops
    std::uint64_t outage_dropped = 0;  // drops due to sensor outages
    std::uint64_t delayed = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t delivered = 0;  // reports that reached the bus (incl.
                                  // duplicates and released delays)
  };

  /// `device_count` radios as in CentralStation; links are all ordered
  /// (tx, rx) pairs.  Requires device_count >= 2.
  FaultInjector(std::size_t device_count, FaultConfig config,
                std::uint64_t seed);

  const FaultConfig& config() const { return config_; }
  std::size_t device_count() const { return device_count_; }

  /// Submit one report.  It is dropped, held back for later delivery, or
  /// published to `bus` (possibly twice), per the configured fault model.
  void offer(const Measurement& m, MessageBus& bus);

  /// Publish every held-back report whose delivery tick is <= `now`.
  /// Call once per beacon round, after the round's offers.
  void advance(Tick now, MessageBus& bus);

  /// Reports still held back for future delivery.
  std::size_t in_flight() const { return delayed_.size(); }

  const Counters& counters() const { return counters_; }

 private:
  struct DelayedReport {
    Tick due = 0;
    std::uint64_t sequence = 0;  // tie-break: preserves offer order
    Measurement measurement;
  };

  std::size_t link_index(DeviceId tx, DeviceId rx) const;
  bool in_outage(DeviceId device, Tick tick) const;

  std::size_t device_count_;
  FaultConfig config_;
  std::vector<Rng> link_rngs_;          // one per directed link
  std::deque<DelayedReport> delayed_;   // sorted by (due, sequence)
  std::uint64_t next_sequence_ = 0;
  Counters counters_;
};

/// Flatten injector counters for obs::ScrapeReport.
obs::HealthBlock health_block(const FaultInjector::Counters& counters);

}  // namespace fadewich::net
