// Fixed-capacity single-producer/single-consumer ring buffer between the
// wire decoder and the central station — the ingestion hot route.
//
// One thread feeds decoded measurements in (the decoder), one thread
// pops them in batches (the station driver).  Both sides are wait-free:
// a power-of-two slot array indexed by free-running head/tail counters,
// with one acquire/release pair per operation and no locks, so a full
// queue exerts *backpressure* (try_push returns false and the rejection
// is counted) instead of blocking or allocating.  Single-threaded use —
// the replay driver's tight loop — is the degenerate case and pays only
// uncontended atomics.
//
// pop_batch() drains up to a caller-sized span per call, which is what
// CentralStation::ingest(batch) wants: the station amortises its map
// walks over the whole batch instead of paying them per report.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "fadewich/net/measurement.hpp"
#include "fadewich/obs/export.hpp"

namespace fadewich::net {

class IngestQueue {
 public:
  /// Monotone operation counters.  `rejected_full` is the backpressure
  /// signal: pushes refused because the consumer is behind.
  struct Counters {
    std::uint64_t pushed = 0;
    std::uint64_t popped = 0;
    std::uint64_t rejected_full = 0;
  };

  /// `capacity` is rounded up to a power of two; requires >= 1.
  explicit IngestQueue(std::size_t capacity);

  std::size_t capacity() const { return slots_.size(); }

  /// Measurements currently queued (exact from either endpoint thread).
  std::size_t size() const {
    return static_cast<std::size_t>(
        tail_.load(std::memory_order_acquire) -
        head_.load(std::memory_order_acquire));
  }

  /// Producer side: enqueue one measurement.  False (and a counted
  /// rejection) when the ring is full — the producer decides whether to
  /// retry after the consumer drains or drop under pressure.
  bool try_push(const Measurement& m);

  /// Producer side: enqueue a batch; returns how many fit.  Stops at the
  /// first refusal so relative order is never broken.
  std::size_t push_some(std::span<const Measurement> batch);

  /// Producer side, zero-copy: the longest contiguous free run writers
  /// may fill in place (empty when the ring is full or the producer
  /// cursor just wrapped).  Slots stay invisible to the consumer until
  /// the matching publish().
  std::span<Measurement> back_span(std::size_t limit);

  /// Publish the first `n` slots of back_span() to the consumer.
  /// Requires n <= back_span(n).size().
  void publish(std::size_t n);

  /// Consumer side: dequeue up to out.size() measurements in FIFO order;
  /// returns the count written to the front of `out`.
  std::size_t pop_batch(std::span<Measurement> out);

  /// Consumer side, zero-copy: the longest contiguous queued run (empty
  /// when the ring is drained or the producer just wrapped).  The span
  /// aliases ring storage and stays valid until the matching consume();
  /// the producer can meanwhile write other slots but never these.  A
  /// wrapped backlog surfaces as two successive spans.
  std::span<const Measurement> front_span(std::size_t limit) const;

  /// Retire the first `n` measurements of front_span().  Requires
  /// n <= front_span(n).size() — consuming slots never handed out is a
  /// logic error upstream, not runtime input.
  void consume(std::size_t n);

  Counters counters() const;

 private:
  std::vector<Measurement> slots_;  // size is a power of two
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer cursor
  alignas(64) std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> popped_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

/// Flatten queue counters for obs::ScrapeReport.
obs::HealthBlock health_block(const IngestQueue::Counters& counters);

}  // namespace fadewich::net
