#include "fadewich/net/message_bus.hpp"

#include <utility>

namespace fadewich::net {

void MessageBus::drain_into(std::vector<Measurement>& out) {
  out.clear();
  std::swap(out, queue_);
}

std::vector<Measurement> MessageBus::drain() {
  std::vector<Measurement> out;
  drain_into(out);
  return out;
}

}  // namespace fadewich::net
