#include "fadewich/net/message_bus.hpp"

namespace fadewich::net {

void MessageBus::publish(const Measurement& m) { queue_.push_back(m); }

std::vector<Measurement> MessageBus::drain() {
  std::vector<Measurement> out(queue_.begin(), queue_.end());
  queue_.clear();
  return out;
}

}  // namespace fadewich::net
