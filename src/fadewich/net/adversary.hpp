// Deterministic active-adversary injection for the wire ingestion path.
//
// FaultInjector models an unreliable-but-honest network; AttackInjector
// models a hostile one.  It sits on the encoded-byte path between the
// stations and the FrameDecoder (plus one pre-encode hook on the RF
// values) and mounts four seeded, reproducible campaigns:
//
//   - forge: fabricate whole frames under a spoofed station identity,
//     with RSSI drawn to mimic movement.  Optionally signed with the
//     victim's key (insider / key compromise).
//   - replay: capture authentic frames off the wire and re-inject them
//     later — verbatim, or with the sequence number and tick rewritten
//     to the present and the CRC re-patched (the auth tag cannot be
//     recomputed without the key, so it goes stale).  Optionally
//     suppresses the victim's own frames while replaying (takeover).
//   - jam: perturb link RSSI before encoding — `mimic` adds Gaussian
//     noise to fake movement where there is none, `mask` freezes the
//     value at the window's first sample to hide movement that is
//     happening.
//   - dos: whole-station outages (uplink jammed flat, reusing the
//     SensorOutage schedule shape) and frame floods against one
//     station identity.
//
// Determinism mirrors FaultInjector: every decision comes from Rngs
// seeded with exec::task_seed(seed, purpose), so a campaign is a pure
// function of (config, seed) — reproducible in tests and benchmarks.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "fadewich/common/rng.hpp"
#include "fadewich/net/fault_injector.hpp"
#include "fadewich/net/measurement.hpp"
#include "fadewich/net/wire.hpp"
#include "fadewich/obs/export.hpp"

namespace fadewich::net {

/// One jamming interval over ticks [from, to].
struct JamWindow {
  enum class Mode : std::uint8_t {
    kMimic,  // add Gaussian noise: fake movement
    kMask,   // freeze at the first value seen: hide movement
  };
  Tick from = 0;
  Tick to = 0;
  Mode mode = Mode::kMimic;
  double sigma_db = 12.0;           // mimic noise spread
  std::vector<std::size_t> streams; // empty = every stream
};

struct AttackConfig {
  // -- forge ---------------------------------------------------------
  std::size_t forged_per_tick = 0;   // 0 disables
  std::uint16_t forge_station = 0;   // spoofed station (and tx) identity
  Tick forge_from = 0;
  Tick forge_to = 0;                 // exclusive
  double forge_level_dbm = -45.0;    // fabricated mean level
  double forge_sigma_db = 10.0;      // fabricated movement-like spread
  bool forge_with_key = false;       // insider: sign with the real key

  // -- replay --------------------------------------------------------
  double capture_probability = 0.0;  // per frame observed on the wire
  Tick replay_delay_ticks = 20;
  bool replay_rewrite = false;       // splice in current seq/tick
  bool replay_suppress = false;      // drop the victim's own frames
  std::uint16_t replay_station = 0;  // victim identity
  Tick replay_from = 0;
  Tick replay_to = 0;                // exclusive; 0/0 = always

  // -- jam -----------------------------------------------------------
  std::vector<JamWindow> jams;

  // -- dos -----------------------------------------------------------
  std::vector<SensorOutage> outages; // station uplinks jammed flat
  std::size_t flood_per_tick = 0;
  std::uint16_t flood_station = 0;
  Tick flood_from = 0;
  Tick flood_to = 0;                 // exclusive

  bool enabled() const {
    return forged_per_tick > 0 || capture_probability > 0.0 ||
           !jams.empty() || !outages.empty() || flood_per_tick > 0;
  }
};

class AttackInjector {
 public:
  struct Counters {
    std::uint64_t frames_observed = 0;  // legit frames offered
    std::uint64_t suppressed = 0;       // legit frames eaten (outage/takeover)
    std::uint64_t captured = 0;         // frames recorded for replay
    std::uint64_t forged = 0;           // fabricated frames injected
    std::uint64_t replayed = 0;         // captured frames re-injected
    std::uint64_t flooded = 0;          // junk flood frames injected
    std::uint64_t jammed_samples = 0;   // RSSI samples perturbed
  };

  /// Requires device_count >= 2.  With forge_with_key, `station_keys`
  /// must hold the spoofed station's key (index = station id).
  AttackInjector(std::size_t device_count, AttackConfig config,
                 std::uint64_t seed);

  /// Provision the compromised key material (forge_with_key campaigns).
  void set_station_keys(std::vector<WireKey> keys);

  const AttackConfig& config() const { return config_; }
  const Counters& counters() const { return counters_; }

  /// RF-layer hook: perturb one sample before it is encoded.  Returns
  /// the value the receiver actually reports.
  double jam(Tick now, std::size_t stream, double rssi_dbm);

  /// Pass one legitimate encoded frame through the attacker-controlled
  /// medium: appended to `out` unless suppressed; possibly captured for
  /// replay.  `bytes` must be exactly the frame's encoding.
  void offer_frame(const FrameHeader& header,
                   std::span<const std::uint8_t> bytes,
                   std::vector<std::uint8_t>& out);

  /// Emit the attacker's own transmissions due at `now` (forgeries,
  /// matured replays, floods) into `out`.  Call once per tick after the
  /// round's offer_frame calls.
  void advance(Tick now, std::vector<std::uint8_t>& out);

 private:
  struct CapturedFrame {
    Tick due = 0;
    std::vector<std::uint8_t> bytes;
  };

  bool station_in_outage(std::uint16_t station, Tick now) const;
  void emit_forgeries(Tick now, std::vector<std::uint8_t>& out);
  void emit_replays(Tick now, std::vector<std::uint8_t>& out);
  void emit_floods(Tick now, std::vector<std::uint8_t>& out);
  /// Rewrite a captured frame in place: seq and tick spliced to the
  /// present, CRC recomputed.  The auth tag (if any) is left stale.
  void rewrite_frame(std::vector<std::uint8_t>& bytes, Tick now);

  std::size_t device_count_;
  AttackConfig config_;
  std::vector<WireKey> station_keys_;
  Rng forge_rng_;
  Rng capture_rng_;
  Rng flood_rng_;
  std::vector<Rng> jam_rngs_;            // one per stream
  std::vector<double> mask_hold_;        // per-stream frozen value
  std::vector<Tick> mask_window_from_;   // window identity for the hold
  std::deque<CapturedFrame> pending_replays_;
  std::uint64_t spoof_seq_ = 0;          // forged-seq high-water mark
  std::vector<WireReport> report_scratch_;
  Counters counters_;
};

/// Flatten attacker counters for obs::ScrapeReport.
obs::HealthBlock health_block(const AttackInjector::Counters& counters);

}  // namespace fadewich::net
