// Append-only capture files: a recorded wire-frame stream on disk, the
// pcap-style artifact the replay driver pushes back through the decoder.
//
// Layout follows the recording_io v2 CRC-framing conventions: a magic +
// version preamble, a CRC over the header payload, then data.  Unlike a
// recording there is no trailer — capture is append-only (a crashed
// capturer must leave a readable file), and every appended frame already
// carries its own CRC, so a torn tail costs one truncated frame at
// decode time, never the file.
//
//   offset size field
//   0      4    magic 'F' 'D' 'W' 'C'
//   4      4    version (currently 1), little-endian
//   8      8    tick rate in Hz (IEEE-754 double)
//   16     8    device count (u64)
//   24     4    CRC-32 over bytes [4, 24)
//   28     ...  wire frames (see net/wire.hpp), back to back
//
// Readers validate the header strictly — finite positive tick rate,
// plausible device count, CRC — and cap the total bytes they will load
// (common/io_limits.hpp, shared with the recording loader), so a corrupt
// or hostile file is rejected before any large allocation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fadewich/common/io_limits.hpp"
#include "fadewich/net/wire.hpp"

namespace fadewich::net {

inline constexpr std::uint32_t kCaptureVersion = 1;
inline constexpr std::size_t kCaptureHeaderSize = 28;
/// Device cap mirrors the recording loader's sensor cap.
inline constexpr std::uint64_t kMaxCaptureDevices = 4096;

struct CaptureHeader {
  double tick_hz = 0.0;
  std::size_t device_count = 0;
};

/// Streams wire frames to an append-only capture.  The header is written
/// on construction; append() encodes and writes one frame.  Write
/// failures throw fadewich::Error (disk full is a runtime error, not a
/// contract bug).
class CaptureWriter {
 public:
  CaptureWriter(std::ostream& os, double tick_hz, std::size_t device_count);

  void append(const FrameHeader& header,
              std::span<const WireReport> reports);

  std::uint64_t frames_written() const { return frames_written_; }

 private:
  std::ostream* os_;
  std::vector<std::uint8_t> scratch_;  // reused encode buffer
  std::uint64_t frames_written_ = 0;
};

/// Read and validate a capture header (magic, version, CRC, finite
/// positive tick rate, plausible device count); throws fadewich::Error
/// on anything implausible, leaving the stream positioned at the first
/// frame.
CaptureHeader read_capture_header(std::istream& is);

/// Read the remaining frame bytes into memory, throwing fadewich::Error
/// once more than `max_bytes` arrive (checked as the stream is read, so
/// a corrupt or hostile capture never drives an unbounded allocation).
std::vector<std::uint8_t> read_capture_frames(
    std::istream& is, std::uint64_t max_bytes = kMaxAggregateLoadBytes);

/// A fully loaded capture.
struct Capture {
  CaptureHeader header;
  std::vector<std::uint8_t> frames;
};

Capture load_capture(std::istream& is);
Capture load_capture(const std::string& path);

}  // namespace fadewich::net
