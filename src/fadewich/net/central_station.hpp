// The central station: assembles per-tick measurement reports from the
// bus into the m x (m-1) synchronised stream rows MD reads.
//
// The paper assumes every stream reports every tick; this station does
// not.  Rows are released either when complete or — when a release
// deadline is configured — once the deadline passes, with missing cells
// imputed from the stream's last released value and flagged stale.
// Pending state is tick-indexed and capacity-bounded (oldest rows are
// evicted, never silently retained forever), and every degradation is
// counted in a StationHealth block, so a lossy reporting path degrades
// output quality instead of aborting the process.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "fadewich/net/measurement.hpp"
#include "fadewich/net/message_bus.hpp"
#include "fadewich/net/seq_window.hpp"
#include "fadewich/obs/export.hpp"

namespace fadewich::net {

struct StationConfig {
  /// Rows older than `now - deadline_ticks` are released incomplete when
  /// ingest() is given the current tick.  0 keeps the strict mode: only
  /// complete rows are ever released.
  Tick deadline_ticks = 0;
  /// Upper bound on rows buffered (pending assembly plus released but not
  /// yet taken).  The oldest row is evicted on overflow.  Requires >= 1.
  std::size_t max_pending = 1024;
};

/// One released row.  `valid[s]` is true when stream s actually reported
/// for this tick; false cells carry the stream's last released value
/// (0 dBm before any release) and should be treated as stale downstream.
struct StationRow {
  Tick tick = 0;
  std::vector<double> values;
  std::vector<std::uint8_t> valid;
  std::size_t missing = 0;

  bool complete() const { return missing == 0; }
};

/// Degradation counters.  Resettable per reporting interval via reset();
/// the station separately keeps monotone lifetime eviction/imputation
/// totals (CentralStation::lifetime_evictions()/lifetime_imputed_cells())
/// so scrapers that expect never-decreasing counters survive a reset.
struct StationHealth {
  std::uint64_t reports = 0;             // measurements ingested
  std::uint64_t duplicates = 0;          // repeat (tick, stream) reports
  std::uint64_t late_reports = 0;        // tick already released/evicted
  std::uint64_t evictions = 0;           // rows dropped by the capacity cap
  std::uint64_t incomplete_releases = 0; // rows released past the deadline
  std::uint64_t imputed_cells = 0;       // sum of imputed_per_stream
  std::uint64_t duplicates_rejected = 0; // exact repeats dropped unapplied
  std::uint64_t malformed = 0;           // out-of-range device ids / ticks
  std::vector<std::uint64_t> imputed_per_stream;

  /// Zero every counter; imputed_per_stream keeps its size.
  void reset();
};

/// Flatten a health block for obs::ScrapeReport (per-stream imputation is
/// summarised as its max, not expanded per stream).
obs::HealthBlock health_block(const StationHealth& health);

class CentralStation {
 public:
  /// `device_count` radios; streams are all ordered (tx, rx) pairs in
  /// row-major order (matching rf::ChannelMatrix).  Requires >= 2.
  explicit CentralStation(std::size_t device_count,
                          StationConfig config = {});

  std::size_t device_count() const { return device_count_; }
  std::size_t stream_count() const {
    return device_count_ * (device_count_ - 1);
  }
  const StationConfig& config() const { return config_; }

  std::size_t stream_index(DeviceId tx, DeviceId rx) const;

  /// Inverse of stream_index: the (tx, rx) pair of a stream.
  std::pair<DeviceId, DeviceId> stream_pair(std::size_t stream) const;

  /// Ingest all measurements pending on the bus.  Returns the ticks that
  /// are released, not yet taken, and *in order* — a released tick is
  /// reported only once no older tick is still under assembly, so
  /// consumers always see a monotone tick stream.  Rows are fetched with
  /// take_row().  A row is released when every stream reported, or — if
  /// `now` is supplied and a deadline is configured — when
  /// `now - tick >= deadline_ticks` (missing cells are imputed and
  /// flagged).  Reports for already-released ticks are counted late and
  /// discarded; they never abort.
  std::vector<Tick> ingest(MessageBus& bus,
                           std::optional<Tick> now = std::nullopt);

  /// Batch form of ingest(): identical semantics over measurements the
  /// caller already holds contiguously.  This is the hot route — the
  /// wire-ingest path pops ring-buffer batches straight into it, and
  /// the bus overload above forwards here after a copy-free drain.
  std::vector<Tick> ingest(std::span<const Measurement> batch,
                           std::optional<Tick> now = std::nullopt);

  /// Fetch and discard the released row for a tick.  Returns nullopt if
  /// the tick is unknown, still incomplete, or already taken — callers
  /// decide how to recover; the station never aborts on runtime input.
  std::optional<StationRow> take_row(Tick tick);

  /// A completed-row consumer for the ordered fast path.  The row
  /// reference is valid only for the duration of the call — the station
  /// reuses its storage for the next row.
  using RowSink = std::function<void(const StationRow&)>;

  /// Ordered-batch fast path: ingest a measurement stream whose ticks
  /// are non-decreasing (the sharded ingest plane's per-shard contract),
  /// handing each completed row to `on_row` the moment a newer tick
  /// arrives.  This skips the per-measurement map lookups and per-row
  /// allocations of the generic path: one reusable assembly row is
  /// filled in place and emitted by callback, never staged in the
  /// released map.  For clean tick-ordered input in strict mode it
  /// delivers exactly the rows the generic path would (verified by
  /// test), except that the final tick is held until the next call
  /// advances past it or finish_ordered() declares end-of-stream —
  /// emission timing depends only on the measurement sequence, never on
  /// batch boundaries, which is what keeps sharded replay bit-identical
  /// at any lane count.  One documented divergence: when a strictly
  /// newer tick arrives while the assembly row is still incomplete (a
  /// frame was lost upstream), the ordered contract says no more
  /// reports for that row are coming, so it is released incomplete with
  /// last-known-value imputation — the same taxonomy a one-tick
  /// deadline applies — where the strict generic path would buffer it
  /// until eviction pressure.  Holding it would stall every later row
  /// behind the monotone-release gate for the rest of the capture.
  /// Deadline-configured stations, carried-over pending/released state,
  /// and tick regressions all fall back to the generic path (full
  /// semantics, no ordering assumed).  Returns rows emitted.
  std::size_t ingest_ordered(std::span<const Measurement> batch,
                             const RowSink& on_row,
                             std::optional<Tick> now = std::nullopt);

  /// Declare end-of-stream for the ordered path: a live complete
  /// assembly row is emitted; a live incomplete one is spilled to the
  /// generic pending map (where strict mode holds it, exactly as the
  /// generic path would).  Returns rows emitted (0 or 1).
  std::size_t finish_ordered(const RowSink& on_row);

  /// Rows currently buffered (pending assembly + released, untaken,
  /// plus the ordered path's live assembly row).
  std::size_t buffered_count() const {
    return pending_.size() + released_.size() + (assembly_live_ ? 1 : 0);
  }

  const StationHealth& health() const { return health_; }

  /// Zero the resettable health block (lifetime totals are untouched).
  void reset_health() { health_.reset(); }

  /// Monotone lifetime totals, unaffected by reset_health().
  std::uint64_t lifetime_evictions() const { return lifetime_evictions_; }
  std::uint64_t lifetime_imputed_cells() const { return lifetime_imputed_; }

 private:
  struct PendingRow {
    std::vector<double> values;
    std::vector<std::uint8_t> present;
    std::size_t filled = 0;
  };

  void release(Tick tick, PendingRow&& row, bool complete);
  void evict_oldest();
  void spill_assembly();
  void emit_assembly(const RowSink& on_row);

  std::size_t device_count_;
  StationConfig config_;
  std::map<Tick, PendingRow> pending_;   // tick-indexed assembly buffers
  std::map<Tick, StationRow> released_;  // released, not yet taken
  std::vector<Measurement> drain_scratch_;  // bus-drain reuse buffer
  std::vector<double> last_value_;       // per-stream imputation source
  // One anti-replay window per stream over tick numbers: an exact repeat
  // of an already-applied (tick, stream) report — a duplicated frame on
  // the wire, or FaultInjector's duplicate taxon — is rejected before it
  // touches (or re-opens) any row.
  std::vector<SeqWindow> seen_ticks_;
  // The ordered fast path's single in-place assembly row (live iff
  // assembly_live_) and the reusable emission buffer it swaps through.
  PendingRow assembly_;
  StationRow emit_row_;
  Tick assembly_tick_ = -1;
  bool assembly_live_ = false;
  Tick release_watermark_ = -1;  // highest tick released or evicted
  StationHealth health_;
  std::uint64_t lifetime_evictions_ = 0;
  std::uint64_t lifetime_imputed_ = 0;
};

}  // namespace fadewich::net
