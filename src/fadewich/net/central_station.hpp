// The central station: assembles per-tick measurement reports from the
// bus into the m x (m-1) synchronised stream rows MD reads.
#pragma once

#include <optional>
#include <vector>

#include "fadewich/net/measurement.hpp"
#include "fadewich/net/message_bus.hpp"

namespace fadewich::net {

class CentralStation {
 public:
  /// `device_count` radios; streams are all ordered (tx, rx) pairs in
  /// row-major order (matching rf::ChannelMatrix).  Requires >= 2.
  explicit CentralStation(std::size_t device_count);

  std::size_t device_count() const { return device_count_; }
  std::size_t stream_count() const {
    return device_count_ * (device_count_ - 1);
  }

  std::size_t stream_index(DeviceId tx, DeviceId rx) const;

  /// Ingest all measurements pending on the bus.  Returns the ticks that
  /// became complete (every stream reported) in ascending order; rows for
  /// complete ticks can then be fetched with take_row().
  std::vector<Tick> ingest(MessageBus& bus);

  /// Fetch and discard the assembled row for a completed tick.  Requires
  /// the tick to be complete and not yet taken.
  std::vector<double> take_row(Tick tick);

 private:
  struct PendingRow {
    Tick tick = 0;
    std::vector<double> values;
    std::size_t filled = 0;
    std::vector<bool> present;
  };

  PendingRow& row_for(Tick tick);

  std::size_t device_count_;
  std::vector<PendingRow> pending_;
};

}  // namespace fadewich::net
