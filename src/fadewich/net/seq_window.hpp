// Sliding 64-entry acceptance window over a monotone sequence space —
// the anti-replay primitive of the frame defender (per-station wire
// sequence numbers) and of the central station's exact-duplicate dedup
// (per-stream tick numbers).
//
// The window remembers the highest sequence accepted so far plus a 64-bit
// bitmap of the 64 values at and below it, the IPsec/DTLS anti-replay
// shape: O(1) per accept, 17 bytes of state, and it tolerates the
// reordering a delayed-report transport produces while rejecting every
// exact repeat inside the window and everything older than the window.
#pragma once

#include <cstdint>

namespace fadewich::net {

class SeqWindow {
 public:
  enum class Result {
    kFresh,     // above the previous high-water mark
    kReordered, // inside the window, not seen before
    kDuplicate, // inside the window, already accepted
    kStale,     // below the window: too old to distinguish from a replay
  };

  /// Test-and-mark: classifies `seq` and, when fresh or reordered,
  /// records it as seen.
  Result accept(std::uint64_t seq) {
    if (!any_) {
      any_ = true;
      high_ = seq;
      mask_ = 1;
      return Result::kFresh;
    }
    if (seq > high_) {
      const std::uint64_t shift = seq - high_;
      mask_ = shift >= 64 ? 0 : mask_ << shift;
      mask_ |= 1;
      high_ = seq;
      return Result::kFresh;
    }
    const std::uint64_t back = high_ - seq;
    if (back >= 64) return Result::kStale;
    const std::uint64_t bit = std::uint64_t{1} << back;
    if ((mask_ & bit) != 0) return Result::kDuplicate;
    mask_ |= bit;
    return Result::kReordered;
  }

  /// True when `seq` has been accepted and is still inside the window.
  bool seen(std::uint64_t seq) const {
    if (!any_ || seq > high_) return false;
    const std::uint64_t back = high_ - seq;
    return back < 64 && (mask_ & (std::uint64_t{1} << back)) != 0;
  }

  bool empty() const { return !any_; }
  std::uint64_t high() const { return high_; }

 private:
  bool any_ = false;
  std::uint64_t high_ = 0;
  std::uint64_t mask_ = 0;  // bit i: high_ - i was accepted
};

}  // namespace fadewich::net
