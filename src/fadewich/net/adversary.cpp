#include "fadewich/net/adversary.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "fadewich/common/crc32.hpp"
#include "fadewich/common/error.hpp"
#include "fadewich/exec/thread_pool.hpp"
#include "fadewich/obs/obs.hpp"

namespace fadewich::net {

namespace {

// Rng purpose lanes: keep every campaign's draws on an independent
// stream so enabling one attack never shifts another's decisions.
constexpr std::uint64_t kForgeLane = 1u << 20;
constexpr std::uint64_t kCaptureLane = kForgeLane + 1;
constexpr std::uint64_t kFloodLane = kForgeLane + 2;

// Little-endian stores into a captured frame being rewritten.
void store_u64_at(std::vector<std::uint8_t>& b, std::size_t off,
                  std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    b[off + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

void store_u32_at(std::vector<std::uint8_t>& b, std::size_t off,
                  std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    b[off + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

}  // namespace

AttackInjector::AttackInjector(std::size_t device_count, AttackConfig config,
                               std::uint64_t seed)
    : device_count_(device_count),
      config_(std::move(config)),
      forge_rng_(exec::task_seed(seed, kForgeLane)),
      capture_rng_(exec::task_seed(seed, kCaptureLane)),
      flood_rng_(exec::task_seed(seed, kFloodLane)) {
  if (device_count < 2) {
    throw Error("attack injector: device_count must be >= 2");
  }
  const std::size_t streams = device_count * (device_count - 1);
  jam_rngs_.reserve(streams);
  for (std::size_t s = 0; s < streams; ++s) {
    jam_rngs_.emplace_back(exec::task_seed(seed, s));
  }
  mask_hold_.assign(streams, 0.0);
  mask_window_from_.assign(streams, std::numeric_limits<Tick>::min());
}

void AttackInjector::set_station_keys(std::vector<WireKey> keys) {
  station_keys_ = std::move(keys);
}

bool AttackInjector::station_in_outage(std::uint16_t station,
                                       Tick now) const {
  for (const SensorOutage& o : config_.outages) {
    if (o.device == station && now >= o.from && now <= o.to) return true;
  }
  return false;
}

double AttackInjector::jam(Tick now, std::size_t stream, double rssi_dbm) {
  FADEWICH_EXPECTS(stream < jam_rngs_.size());
  for (const JamWindow& w : config_.jams) {
    if (now < w.from || now > w.to) continue;
    if (!w.streams.empty() &&
        std::find(w.streams.begin(), w.streams.end(), stream) ==
            w.streams.end()) {
      continue;
    }
    ++counters_.jammed_samples;
    if (w.mode == JamWindow::Mode::kMimic) {
      return rssi_dbm + jam_rngs_[stream].normal(0.0, w.sigma_db);
    }
    // Mask: freeze at the first value this stream shows in this window.
    if (mask_window_from_[stream] != w.from) {
      mask_window_from_[stream] = w.from;
      mask_hold_[stream] = rssi_dbm;
    }
    return mask_hold_[stream];
  }
  return rssi_dbm;
}

void AttackInjector::offer_frame(const FrameHeader& header,
                                 std::span<const std::uint8_t> bytes,
                                 std::vector<std::uint8_t>& out) {
  ++counters_.frames_observed;
  // Track the victims' sequence high-water marks so forged/rewritten
  // frames always land above the legitimate window.
  if ((config_.forged_per_tick > 0 &&
       header.station_id == config_.forge_station) ||
      (config_.capture_probability > 0.0 && config_.replay_rewrite &&
       header.station_id == config_.replay_station)) {
    spoof_seq_ = std::max(spoof_seq_, header.seq);
  }

  const bool in_replay_window =
      config_.replay_to == 0 ||
      (header.tick >= config_.replay_from && header.tick < config_.replay_to);
  if (config_.capture_probability > 0.0 && in_replay_window &&
      capture_rng_.uniform() < config_.capture_probability) {
    ++counters_.captured;
    pending_replays_.push_back(
        {header.tick + config_.replay_delay_ticks,
         std::vector<std::uint8_t>(bytes.begin(), bytes.end())});
  }

  if (station_in_outage(header.station_id, header.tick) ||
      (config_.replay_suppress && in_replay_window &&
       header.station_id == config_.replay_station)) {
    ++counters_.suppressed;
    return;
  }
  out.insert(out.end(), bytes.begin(), bytes.end());
}

void AttackInjector::emit_forgeries(Tick now,
                                    std::vector<std::uint8_t>& out) {
  if (config_.forged_per_tick == 0 || now < config_.forge_from ||
      now >= config_.forge_to) {
    return;
  }
  const WireKey* key = nullptr;
  if (config_.forge_with_key &&
      config_.forge_station < station_keys_.size()) {
    key = &station_keys_[config_.forge_station];
  }
  for (std::size_t i = 0; i < config_.forged_per_tick; ++i) {
    FrameHeader header;
    header.station_id = config_.forge_station;
    header.tx = config_.forge_station;
    header.tick = now;
    header.seq = ++spoof_seq_;
    report_scratch_.clear();
    for (std::size_t rx = 0; rx < device_count_; ++rx) {
      if (rx == header.tx) continue;
      const double level = forge_rng_.normal(config_.forge_level_dbm,
                                             config_.forge_sigma_db);
      report_scratch_.push_back(
          {static_cast<DeviceId>(rx), wire_encode_dbm(level)});
    }
    encode_frame(header, report_scratch_, out, key);
    ++counters_.forged;
  }
}

void AttackInjector::rewrite_frame(std::vector<std::uint8_t>& bytes,
                                   Tick now) {
  if (bytes.size() < wire_frame_size(1)) return;  // never true for captures
  store_u64_at(bytes, 8, ++spoof_seq_);
  store_u64_at(bytes, 16, static_cast<std::uint64_t>(now));
  const std::size_t crc_off = bytes.size() - kWireTrailerSize;
  store_u32_at(bytes, crc_off, crc32(bytes.data() + 4, crc_off - 4));
}

void AttackInjector::emit_replays(Tick now, std::vector<std::uint8_t>& out) {
  while (!pending_replays_.empty() && pending_replays_.front().due <= now) {
    CapturedFrame frame = std::move(pending_replays_.front());
    pending_replays_.pop_front();
    if (config_.replay_rewrite) rewrite_frame(frame.bytes, now);
    out.insert(out.end(), frame.bytes.begin(), frame.bytes.end());
    ++counters_.replayed;
  }
}

void AttackInjector::emit_floods(Tick now, std::vector<std::uint8_t>& out) {
  if (config_.flood_per_tick == 0 || now < config_.flood_from ||
      now >= config_.flood_to) {
    return;
  }
  for (std::size_t i = 0; i < config_.flood_per_tick; ++i) {
    FrameHeader header;
    header.station_id = config_.flood_station;
    header.tx = config_.flood_station;
    header.tick = now;
    header.seq = static_cast<std::uint64_t>(
        flood_rng_.uniform_int(1'000'000, 100'000'000));
    report_scratch_.clear();
    const std::size_t reports =
        static_cast<std::size_t>(flood_rng_.uniform_int(1, 8));
    for (std::size_t r = 0; r < reports; ++r) {
      const auto rx = static_cast<DeviceId>(flood_rng_.uniform_int(
          0, static_cast<std::int64_t>(device_count_) - 1));
      report_scratch_.push_back(
          {rx, wire_encode_dbm(flood_rng_.uniform(-90.0, -30.0))});
    }
    encode_frame(header, report_scratch_, out, nullptr);
    ++counters_.flooded;
  }
}

void AttackInjector::advance(Tick now, std::vector<std::uint8_t>& out) {
  emit_forgeries(now, out);
  emit_replays(now, out);
  emit_floods(now, out);
}

obs::HealthBlock health_block(const AttackInjector::Counters& c) {
  obs::HealthBlock block;
  block.name = "attack";
  block.add("frames_observed", static_cast<double>(c.frames_observed));
  block.add("suppressed", static_cast<double>(c.suppressed));
  block.add("captured", static_cast<double>(c.captured));
  block.add("forged", static_cast<double>(c.forged));
  block.add("replayed", static_cast<double>(c.replayed));
  block.add("flooded", static_cast<double>(c.flooded));
  block.add("jammed_samples", static_cast<double>(c.jammed_samples));
  return block;
}

}  // namespace fadewich::net
