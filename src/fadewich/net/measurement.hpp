// Wire-level types of the sensor network.
//
// Each device periodically broadcasts a beacon; every other device
// measures the beacon's RSSI and reports the measurement to the central
// station over a secure channel (system model item 2).  In this in-process
// reproduction the "secure channel" is a message bus; the framing below is
// what a real deployment would serialise.
#pragma once

#include <cstdint>

#include "fadewich/common/time.hpp"

namespace fadewich::net {

using DeviceId = std::uint16_t;

/// One RSSI measurement: receiver `rx` heard transmitter `tx`.
struct Measurement {
  DeviceId tx = 0;
  DeviceId rx = 0;
  Tick tick = 0;
  double rssi_dbm = 0.0;
};

}  // namespace fadewich::net
