// The interface MD consumes: a set of synchronised RSSI streams advancing
// one tick at a time.  Implementations: LiveSensorNetwork (simulated
// radios, online) and RecordingPlayback (recorded data, offline analysis —
// how all the paper's sweeps are evaluated).
#pragma once

#include <span>

#include "fadewich/common/time.hpp"

namespace fadewich::net {

class RssiStreamSource {
 public:
  virtual ~RssiStreamSource() = default;

  virtual std::size_t stream_count() const = 0;
  virtual double tick_hz() const = 0;

  /// Advance one tick.  Returns false when the source is exhausted (a
  /// playback reached its end); live sources always return true.  On
  /// success `out` (size stream_count()) receives the new samples.
  virtual bool next(std::span<double> out) = 0;
};

}  // namespace fadewich::net
