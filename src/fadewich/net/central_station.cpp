#include "fadewich/net/central_station.hpp"

#include <utility>

#include "fadewich/common/error.hpp"

namespace fadewich::net {

CentralStation::CentralStation(std::size_t device_count,
                               StationConfig config)
    : device_count_(device_count), config_(config) {
  // Station configs come from deployment descriptions at runtime, so
  // invalid values throw fadewich::Error (recoverable data error)
  // instead of tripping a contract check.
  if (device_count < 2) {
    throw Error("central station: device_count must be >= 2");
  }
  if (config.deadline_ticks < 0) {
    throw Error("central station: deadline_ticks must be >= 0");
  }
  if (config.max_pending < 1) {
    throw Error("central station: max_pending must be >= 1");
  }
  last_value_.assign(stream_count(), 0.0);
  health_.imputed_per_stream.assign(stream_count(), 0);
}

std::size_t CentralStation::stream_index(DeviceId tx, DeviceId rx) const {
  FADEWICH_EXPECTS(tx < device_count_);
  FADEWICH_EXPECTS(rx < device_count_);
  FADEWICH_EXPECTS(tx != rx);
  return static_cast<std::size_t>(tx) * (device_count_ - 1) +
         (rx < tx ? rx : rx - 1);
}

std::pair<DeviceId, DeviceId> CentralStation::stream_pair(
    std::size_t stream) const {
  FADEWICH_EXPECTS(stream < stream_count());
  const auto tx = static_cast<DeviceId>(stream / (device_count_ - 1));
  auto rx = static_cast<DeviceId>(stream % (device_count_ - 1));
  if (rx >= tx) ++rx;
  return {tx, rx};
}

void CentralStation::release(Tick tick, PendingRow&& row, bool complete) {
  StationRow out;
  out.tick = tick;
  out.values = std::move(row.values);
  out.valid = std::move(row.present);
  if (complete) {
    out.missing = 0;
  } else {
    ++health_.incomplete_releases;
    out.missing = stream_count() - row.filled;
    for (std::size_t s = 0; s < out.values.size(); ++s) {
      if (!out.valid[s]) {
        out.values[s] = last_value_[s];  // last-known-value imputation
        ++health_.imputed_cells;
        ++health_.imputed_per_stream[s];
      }
    }
  }
  for (std::size_t s = 0; s < out.values.size(); ++s) {
    if (out.valid[s]) last_value_[s] = out.values[s];
  }
  if (tick > release_watermark_) release_watermark_ = tick;
  released_.emplace(tick, std::move(out));
}

void CentralStation::evict_oldest() {
  // Prefer dropping a row still under assembly; only a caller that never
  // takes released rows forces released evictions.
  if (!pending_.empty()) {
    const Tick tick = pending_.begin()->first;
    if (tick > release_watermark_) release_watermark_ = tick;
    pending_.erase(pending_.begin());
  } else {
    released_.erase(released_.begin());
  }
  ++health_.evictions;
}

std::vector<Tick> CentralStation::ingest(MessageBus& bus,
                                         std::optional<Tick> now) {
  for (const Measurement& m : bus.drain()) {
    ++health_.reports;
    auto it = pending_.find(m.tick);
    if (it == pending_.end()) {
      // A report for a tick already released (or given up on) cannot
      // amend the frozen row: count it late and move on.
      const bool already_released = released_.count(m.tick) > 0;
      const bool past_watermark =
          config_.deadline_ticks > 0 && m.tick <= release_watermark_;
      if (already_released || past_watermark) {
        ++health_.late_reports;
        continue;
      }
      while (buffered_count() >= config_.max_pending) evict_oldest();
      PendingRow fresh;
      fresh.values.assign(stream_count(), 0.0);
      fresh.present.assign(stream_count(), 0);
      it = pending_.emplace(m.tick, std::move(fresh)).first;
    }
    PendingRow& row = it->second;
    const std::size_t s = stream_index(m.tx, m.rx);
    if (!row.present[s]) {
      row.present[s] = 1;
      ++row.filled;
    } else {
      ++health_.duplicates;
    }
    row.values[s] = m.rssi_dbm;  // duplicate reports keep the latest
  }

  // Release complete rows, then everything past the deadline.
  for (auto it = pending_.begin(); it != pending_.end();) {
    const bool complete = it->second.filled == stream_count();
    const bool expired =
        config_.deadline_ticks > 0 && now.has_value() &&
        *now - it->first >= config_.deadline_ticks;
    if (complete || expired) {
      release(it->first, std::move(it->second), complete);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }

  // Surface released rows in tick order: a released tick is ready only
  // once nothing older is still under assembly, so downstream always
  // consumes a monotone stream (the deadline bounds the holdback).
  std::vector<Tick> ready;
  ready.reserve(released_.size());
  for (const auto& [tick, row] : released_) {
    if (!pending_.empty() && pending_.begin()->first < tick) break;
    ready.push_back(tick);
  }
  return ready;  // std::map iterates in ascending tick order
}

std::optional<StationRow> CentralStation::take_row(Tick tick) {
  const auto it = released_.find(tick);
  if (it == released_.end()) return std::nullopt;
  StationRow row = std::move(it->second);
  released_.erase(it);
  return row;
}

}  // namespace fadewich::net
