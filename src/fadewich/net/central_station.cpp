#include "fadewich/net/central_station.hpp"

#include <algorithm>

#include "fadewich/common/error.hpp"

namespace fadewich::net {

CentralStation::CentralStation(std::size_t device_count)
    : device_count_(device_count) {
  FADEWICH_EXPECTS(device_count >= 2);
}

std::size_t CentralStation::stream_index(DeviceId tx, DeviceId rx) const {
  FADEWICH_EXPECTS(tx < device_count_);
  FADEWICH_EXPECTS(rx < device_count_);
  FADEWICH_EXPECTS(tx != rx);
  return static_cast<std::size_t>(tx) * (device_count_ - 1) +
         (rx < tx ? rx : rx - 1);
}

CentralStation::PendingRow& CentralStation::row_for(Tick tick) {
  for (auto& row : pending_) {
    if (row.tick == tick) return row;
  }
  PendingRow row;
  row.tick = tick;
  row.values.assign(stream_count(), 0.0);
  row.present.assign(stream_count(), false);
  pending_.push_back(std::move(row));
  return pending_.back();
}

std::vector<Tick> CentralStation::ingest(MessageBus& bus) {
  for (const Measurement& m : bus.drain()) {
    PendingRow& row = row_for(m.tick);
    const std::size_t s = stream_index(m.tx, m.rx);
    if (!row.present[s]) {
      row.present[s] = true;
      ++row.filled;
    }
    row.values[s] = m.rssi_dbm;  // duplicate reports keep the latest
  }
  std::vector<Tick> complete;
  for (const auto& row : pending_) {
    if (row.filled == stream_count()) complete.push_back(row.tick);
  }
  std::sort(complete.begin(), complete.end());
  return complete;
}

std::vector<double> CentralStation::take_row(Tick tick) {
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->tick == tick) {
      FADEWICH_EXPECTS(it->filled == stream_count());
      std::vector<double> values = std::move(it->values);
      pending_.erase(it);
      return values;
    }
  }
  FADEWICH_EXPECTS(false && "tick not pending");
  return {};
}

}  // namespace fadewich::net
