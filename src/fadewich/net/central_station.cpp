#include "fadewich/net/central_station.hpp"

#include <algorithm>
#include <utility>

#include "fadewich/common/error.hpp"
#include "fadewich/obs/obs.hpp"

namespace fadewich::net {

namespace {

struct StationMetrics {
  obs::Counter reports = obs::registry().counter(
      "fadewich_net_reports_total", "measurements ingested by the station");
  obs::Counter duplicates = obs::registry().counter(
      "fadewich_net_duplicates_total", "repeat (tick, stream) reports");
  obs::Counter late = obs::registry().counter(
      "fadewich_net_late_reports_total",
      "reports for already-released ticks");
  obs::Counter evictions = obs::registry().counter(
      "fadewich_net_evictions_total", "rows dropped by the capacity cap");
  obs::Counter incomplete = obs::registry().counter(
      "fadewich_net_incomplete_releases_total",
      "rows released past the deadline");
  obs::Counter imputed = obs::registry().counter(
      "fadewich_net_imputed_cells_total",
      "cells filled from last released values");
  obs::Counter duplicates_rejected = obs::registry().counter(
      "fadewich_net_duplicates_rejected_total",
      "exact repeat reports dropped without effect");
  obs::Counter malformed = obs::registry().counter(
      "fadewich_net_malformed_total",
      "reports with impossible device ids or ticks");
  static StationMetrics& get() {
    static StationMetrics metrics;
    return metrics;
  }
};

}  // namespace

void StationHealth::reset() {
  reports = 0;
  duplicates = 0;
  late_reports = 0;
  evictions = 0;
  incomplete_releases = 0;
  imputed_cells = 0;
  duplicates_rejected = 0;
  malformed = 0;
  std::fill(imputed_per_stream.begin(), imputed_per_stream.end(), 0);
}

obs::HealthBlock health_block(const StationHealth& health) {
  obs::HealthBlock block;
  block.name = "station";
  block.add("reports", static_cast<double>(health.reports));
  block.add("duplicates", static_cast<double>(health.duplicates));
  block.add("late_reports", static_cast<double>(health.late_reports));
  block.add("evictions", static_cast<double>(health.evictions));
  block.add("incomplete_releases",
            static_cast<double>(health.incomplete_releases));
  block.add("imputed_cells", static_cast<double>(health.imputed_cells));
  block.add("duplicates_rejected",
            static_cast<double>(health.duplicates_rejected));
  block.add("malformed", static_cast<double>(health.malformed));
  std::uint64_t worst = 0;
  for (const std::uint64_t n : health.imputed_per_stream) {
    worst = std::max(worst, n);
  }
  block.add("max_imputed_per_stream", static_cast<double>(worst));
  return block;
}

CentralStation::CentralStation(std::size_t device_count,
                               StationConfig config)
    : device_count_(device_count), config_(config) {
  // Station configs come from deployment descriptions at runtime, so
  // invalid values throw fadewich::Error (recoverable data error)
  // instead of tripping a contract check.
  if (device_count < 2) {
    throw Error("central station: device_count must be >= 2");
  }
  if (config.deadline_ticks < 0) {
    throw Error("central station: deadline_ticks must be >= 0");
  }
  if (config.max_pending < 1) {
    throw Error("central station: max_pending must be >= 1");
  }
  last_value_.assign(stream_count(), 0.0);
  health_.imputed_per_stream.assign(stream_count(), 0);
  seen_ticks_.assign(stream_count(), SeqWindow{});
}

std::size_t CentralStation::stream_index(DeviceId tx, DeviceId rx) const {
  FADEWICH_EXPECTS(tx < device_count_);
  FADEWICH_EXPECTS(rx < device_count_);
  FADEWICH_EXPECTS(tx != rx);
  return static_cast<std::size_t>(tx) * (device_count_ - 1) +
         (rx < tx ? rx : rx - 1);
}

std::pair<DeviceId, DeviceId> CentralStation::stream_pair(
    std::size_t stream) const {
  FADEWICH_EXPECTS(stream < stream_count());
  const auto tx = static_cast<DeviceId>(stream / (device_count_ - 1));
  auto rx = static_cast<DeviceId>(stream % (device_count_ - 1));
  if (rx >= tx) ++rx;
  return {tx, rx};
}

void CentralStation::release(Tick tick, PendingRow&& row, bool complete) {
  StationRow out;
  out.tick = tick;
  out.values = std::move(row.values);
  out.valid = std::move(row.present);
  if (complete) {
    out.missing = 0;
  } else {
    ++health_.incomplete_releases;
    StationMetrics::get().incomplete.inc();
    out.missing = stream_count() - row.filled;
    for (std::size_t s = 0; s < out.values.size(); ++s) {
      if (!out.valid[s]) {
        out.values[s] = last_value_[s];  // last-known-value imputation
        ++health_.imputed_cells;
        ++health_.imputed_per_stream[s];
        ++lifetime_imputed_;
      }
    }
    StationMetrics::get().imputed.add(static_cast<double>(out.missing));
  }
  for (std::size_t s = 0; s < out.values.size(); ++s) {
    if (out.valid[s]) last_value_[s] = out.values[s];
  }
  if (tick > release_watermark_) release_watermark_ = tick;
  released_.emplace(tick, std::move(out));
}

void CentralStation::evict_oldest() {
  // Prefer dropping a row still under assembly; only a caller that never
  // takes released rows forces released evictions.
  if (!pending_.empty()) {
    const Tick tick = pending_.begin()->first;
    if (tick > release_watermark_) release_watermark_ = tick;
    pending_.erase(pending_.begin());
  } else {
    released_.erase(released_.begin());
  }
  ++health_.evictions;
  ++lifetime_evictions_;
  StationMetrics::get().evictions.inc();
}

std::vector<Tick> CentralStation::ingest(MessageBus& bus,
                                         std::optional<Tick> now) {
  bus.drain_into(drain_scratch_);
  return ingest(drain_scratch_, now);
}

std::vector<Tick> CentralStation::ingest(std::span<const Measurement> batch,
                                         std::optional<Tick> now) {
  // A live ordered-path assembly row is just a pending row the fast path
  // kept out of the map; fold it back in so the two paths can interleave
  // on one station without losing reports.
  spill_assembly();
  for (const Measurement& m : batch) {
    ++health_.reports;
    StationMetrics::get().reports.inc();
    // Ingest runs on wire-decoded input: a CRC-valid frame can still
    // carry device ids or ticks no deployment produced.  Those reports
    // are counted malformed and dropped — stream_index() is a contract
    // for trusted callers, not a validator for hostile bytes.
    if (m.tx >= device_count_ || m.rx >= device_count_ || m.tx == m.rx ||
        m.tick < 0) {
      ++health_.malformed;
      StationMetrics::get().malformed.inc();
      continue;
    }
    const std::size_t s = stream_index(m.tx, m.rx);
    auto it = pending_.find(m.tick);
    if (it == pending_.end()) {
      // A report for a tick already released (or given up on) cannot
      // amend the frozen row: count it late and move on.  The watermark
      // gates strict mode too — a straggler for a released-and-taken
      // tick used to re-open a pending row there that could never
      // complete, stalling every newer tick at the monotone-release
      // gate below.
      const bool already_released = released_.count(m.tick) > 0;
      const bool past_watermark = m.tick <= release_watermark_;
      if (already_released || past_watermark) {
        ++health_.late_reports;
        StationMetrics::get().late.inc();
        if (seen_ticks_[s].seen(static_cast<std::uint64_t>(m.tick))) {
          // Not a straggling loss — a repeat of a report this stream
          // already delivered (wire duplicate / injector duplicate).
          ++health_.duplicates_rejected;
          StationMetrics::get().duplicates_rejected.inc();
        }
        continue;
      }
      while (buffered_count() >= config_.max_pending) evict_oldest();
      PendingRow fresh;
      fresh.values.assign(stream_count(), 0.0);
      fresh.present.assign(stream_count(), 0);
      it = pending_.emplace(m.tick, std::move(fresh)).first;
    }
    PendingRow& row = it->second;
    if (!row.present[s]) {
      row.present[s] = 1;
      ++row.filled;
      row.values[s] = m.rssi_dbm;
      seen_ticks_[s].accept(static_cast<std::uint64_t>(m.tick));
    } else {
      ++health_.duplicates;
      StationMetrics::get().duplicates.inc();
      if (row.values[s] == m.rssi_dbm) {
        // Exact repeat: dropped without effect.
        ++health_.duplicates_rejected;
        StationMetrics::get().duplicates_rejected.inc();
      } else {
        row.values[s] = m.rssi_dbm;  // revised reports keep the latest
      }
    }
  }

  // Release complete rows, then everything past the deadline.
  for (auto it = pending_.begin(); it != pending_.end();) {
    const bool complete = it->second.filled == stream_count();
    const bool expired =
        config_.deadline_ticks > 0 && now.has_value() &&
        *now - it->first >= config_.deadline_ticks;
    if (complete || expired) {
      release(it->first, std::move(it->second), complete);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }

  // Surface released rows in tick order: a released tick is ready only
  // once nothing older is still under assembly, so downstream always
  // consumes a monotone stream (the deadline bounds the holdback).
  std::vector<Tick> ready;
  ready.reserve(released_.size());
  for (const auto& [tick, row] : released_) {
    if (!pending_.empty() && pending_.begin()->first < tick) break;
    ready.push_back(tick);
  }
  return ready;  // std::map iterates in ascending tick order
}

void CentralStation::spill_assembly() {
  if (!assembly_live_) return;
  assembly_live_ = false;
  pending_.emplace(assembly_tick_, std::move(assembly_));
  assembly_ = PendingRow{};
}

void CentralStation::emit_assembly(const RowSink& on_row) {
  emit_row_.tick = assembly_tick_;
  emit_row_.values.swap(assembly_.values);
  emit_row_.valid.swap(assembly_.present);
  if (assembly_.filled == stream_count()) {
    emit_row_.missing = 0;
    std::copy(emit_row_.values.begin(), emit_row_.values.end(),
              last_value_.begin());
  } else {
    // Incomplete release under the ordered contract (the stream moved
    // past this tick): same imputation taxonomy as release().
    ++health_.incomplete_releases;
    StationMetrics::get().incomplete.inc();
    emit_row_.missing = stream_count() - assembly_.filled;
    for (std::size_t s = 0; s < emit_row_.values.size(); ++s) {
      if (!emit_row_.valid[s]) {
        emit_row_.values[s] = last_value_[s];
        ++health_.imputed_cells;
        ++health_.imputed_per_stream[s];
        ++lifetime_imputed_;
      } else {
        last_value_[s] = emit_row_.values[s];
      }
    }
    StationMetrics::get().imputed.add(
        static_cast<double>(emit_row_.missing));
  }
  if (assembly_tick_ > release_watermark_) {
    release_watermark_ = assembly_tick_;
  }
  on_row(emit_row_);
  // Reclaim the buffers: the sink contract says the row dies with the
  // call, so the vectors come straight back for the next assembly.
  assembly_.values.swap(emit_row_.values);
  assembly_.present.swap(emit_row_.valid);
  std::fill(assembly_.values.begin(), assembly_.values.end(), 0.0);
  std::fill(assembly_.present.begin(), assembly_.present.end(),
            std::uint8_t{0});
  assembly_.filled = 0;
  assembly_live_ = false;
}

std::size_t CentralStation::ingest_ordered(std::span<const Measurement> batch,
                                           const RowSink& on_row,
                                           std::optional<Tick> now) {
  std::size_t emitted = 0;
  std::size_t i = 0;
  // The fast loop assumes strict mode and no carried-over generic state;
  // anything else (and any mid-batch ordering violation below) drops to
  // the generic path, which implements the full semantics.
  if (config_.deadline_ticks == 0 && pending_.empty() &&
      released_.empty()) {
    const std::size_t streams = stream_count();
    const std::size_t devices = device_count_;
    // obs counters and the hot health_ totals are flushed once per batch
    // instead of bumped per measurement — at millions of reports/sec the
    // per-inc() shard lookup (and even a per-report member store) is the
    // dominant station cost.
    std::uint64_t n_reports = 0, n_dup = 0, n_dup_rej = 0, n_late = 0,
                  n_malformed = 0;
    for (; i < batch.size(); ++i) {
      const Measurement& m = batch[i];
      ++n_reports;
      if (m.tx >= devices || m.rx >= devices || m.tx == m.rx ||
          m.tick < 0) {
        ++n_malformed;
        ++health_.malformed;
        continue;
      }
      const std::size_t s =
          static_cast<std::size_t>(m.tx) * (devices - 1) +
          (m.rx < m.tx ? m.rx : m.rx - 1);
      if (assembly_live_ && m.tick != assembly_tick_) {
        if (m.tick < assembly_tick_) {
          // Tick regression: the ordering contract is broken; let the
          // generic path handle this and everything after it.
          break;
        }
        // A strictly newer tick finalises the assembly row, complete or
        // not — emit_assembly imputes missing cells (see header doc).
        emit_assembly(on_row);
        ++emitted;
      }
      if (!assembly_live_) {
        if (m.tick <= release_watermark_) {
          // Straggler for an already-emitted (or given-up) tick: same
          // late/duplicate taxonomy as the generic path.
          ++n_late;
          ++health_.late_reports;
          if (seen_ticks_[s].seen(static_cast<std::uint64_t>(m.tick))) {
            ++n_dup_rej;
            ++health_.duplicates_rejected;
          }
          continue;
        }
        if (assembly_.values.size() != streams) {
          assembly_.values.assign(streams, 0.0);
          assembly_.present.assign(streams, 0);
        }
        assembly_tick_ = m.tick;
        assembly_live_ = true;
      }
      PendingRow& row = assembly_;
      if (!row.present[s]) {
        row.present[s] = 1;
        ++row.filled;
        row.values[s] = m.rssi_dbm;
        seen_ticks_[s].accept(static_cast<std::uint64_t>(m.tick));
      } else {
        ++n_dup;
        ++health_.duplicates;
        if (row.values[s] == m.rssi_dbm) {
          ++n_dup_rej;
          ++health_.duplicates_rejected;
        } else {
          row.values[s] = m.rssi_dbm;  // revised reports keep the latest
        }
      }
    }
    health_.reports += n_reports;
    StationMetrics& mx = StationMetrics::get();
    if (n_reports) mx.reports.add(n_reports);
    if (n_dup) mx.duplicates.add(n_dup);
    if (n_dup_rej) mx.duplicates_rejected.add(n_dup_rej);
    if (n_late) mx.late.add(n_late);
    if (n_malformed) mx.malformed.add(n_malformed);
  }
  if (i < batch.size()) {
    // Generic remainder: spill the live row (ingest() does), run the
    // full-semantics path, and forward whatever it releases.
    const std::vector<Tick> ready = ingest(batch.subspan(i), now);
    for (const Tick tick : ready) {
      if (std::optional<StationRow> row = take_row(tick)) {
        on_row(*row);
        ++emitted;
      }
    }
  }
  return emitted;
}

std::size_t CentralStation::finish_ordered(const RowSink& on_row) {
  if (!assembly_live_) return 0;
  if (assembly_.filled == stream_count()) {
    emit_assembly(on_row);
    return 1;
  }
  spill_assembly();  // strict mode holds it, as the generic path would
  return 0;
}

std::optional<StationRow> CentralStation::take_row(Tick tick) {
  const auto it = released_.find(tick);
  if (it == released_.end()) return std::nullopt;
  StationRow row = std::move(it->second);
  released_.erase(it);
  return row;
}

}  // namespace fadewich::net
