#include "fadewich/net/wire.hpp"

#include <cstring>

#include "fadewich/common/crc32.hpp"
#include "fadewich/common/error.hpp"
#include "fadewich/common/siphash.hpp"
#include "fadewich/sim/recording.hpp"

namespace fadewich::net {

namespace {

constexpr std::uint8_t kMagic[4] = {'F', 'D', 'W', 'F'};

// Explicit little-endian accessors define the byte order of the wire
// independent of the host; compilers collapse them to plain loads and
// stores on little-endian targets.

std::uint16_t load_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t load_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t load_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(load_u32(p)) |
         (static_cast<std::uint64_t>(load_u32(p + 4)) << 32);
}

void store_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

void store_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

void store_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

bool starts_with_magic(const std::uint8_t* p) {
  return std::memcmp(p, kMagic, sizeof(kMagic)) == 0;
}

}  // namespace

std::int8_t wire_encode_dbm(double rssi_dbm) {
  return sim::Recording::encode_dbm(rssi_dbm);
}

WireKey derive_station_key(std::uint64_t master_seed,
                           std::uint16_t station_id) {
  // SplitMix64 finalising mix over (seed, station, lane): full avalanche,
  // so neighbouring stations share no key structure.
  const auto mix = [](std::uint64_t z) {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  WireKey key;
  key.k0 = mix(master_seed ^ (std::uint64_t{station_id} << 1));
  key.k1 = mix(mix(master_seed) ^ station_id ^ 0xa5a5a5a5a5a5a5a5ULL);
  return key;
}

void encode_frame(const FrameHeader& header,
                  std::span<const WireReport> reports,
                  std::vector<std::uint8_t>& out, const WireKey* key) {
  FADEWICH_EXPECTS(!reports.empty());
  FADEWICH_EXPECTS(reports.size() <= kMaxFrameReports);
  const bool authed = key != nullptr;
  const std::size_t start = out.size();
  out.resize(start + wire_frame_size(reports.size(), authed));
  std::uint8_t* p = out.data() + start;
  std::memcpy(p, kMagic, sizeof(kMagic));
  p[4] = kWireVersion;
  p[5] = authed ? kWireFlagAuth : 0;
  store_u16(p + 6, header.station_id);
  store_u64(p + 8, header.seq);
  store_u64(p + 16, static_cast<std::uint64_t>(header.tick));
  store_u16(p + 24, header.tx);
  store_u16(p + 26, static_cast<std::uint16_t>(reports.size()));
  std::uint8_t* q = p + kWireHeaderSize;
  for (const WireReport& r : reports) {
    store_u16(q, r.rx);
    q[2] = static_cast<std::uint8_t>(r.rssi_dbm);
    q += kWireReportSize;
  }
  const std::size_t tagged =
      kWireHeaderSize - sizeof(kMagic) + kWireReportSize * reports.size();
  if (authed) {
    store_u64(q, siphash24(key->k0, key->k1, p + sizeof(kMagic), tagged));
    q += kWireTagSize;
  }
  const std::size_t covered = tagged + (authed ? kWireTagSize : 0);
  store_u32(q, crc32(p + sizeof(kMagic), covered));
}

std::uint64_t frame_tag(const WireKey& key, const FrameHeader& header,
                        std::span<const WireReport> reports) {
  // Re-serialise the tag-covered bytes [4, 28+3n) exactly as the encoder
  // lays them out.  Thread-local scratch keeps verification
  // allocation-free in steady state.
  static thread_local std::vector<std::uint8_t> scratch;
  const std::size_t covered = kWireHeaderSize - sizeof(kMagic) +
                              kWireReportSize * reports.size();
  scratch.resize(covered);
  std::uint8_t* p = scratch.data();
  p[0] = kWireVersion;
  p[1] = kWireFlagAuth;
  store_u16(p + 2, header.station_id);
  store_u64(p + 4, header.seq);
  store_u64(p + 12, static_cast<std::uint64_t>(header.tick));
  store_u16(p + 20, header.tx);
  store_u16(p + 22, static_cast<std::uint16_t>(reports.size()));
  std::uint8_t* q = p + kWireHeaderSize - sizeof(kMagic);
  for (const WireReport& r : reports) {
    store_u16(q, r.rx);
    q[2] = static_cast<std::uint8_t>(r.rssi_dbm);
    q += kWireReportSize;
  }
  return siphash24(key.k0, key.k1, p, covered);
}

bool verify_frame_tag(const WireKey& key, const DecodedFrame& frame) {
  if (!frame.authenticated) return false;
  return frame_tag(key, frame.header, frame.reports) == frame.tag;
}

void to_measurements(const DecodedFrame& frame,
                     std::vector<Measurement>& out) {
  out.reserve(out.size() + frame.reports.size());
  for (const WireReport& r : frame.reports) {
    out.push_back({frame.header.tx, r.rx, frame.header.tick,
                   static_cast<double>(r.rssi_dbm)});
  }
}

ScanOutcome scan_frame(std::span<const std::uint8_t> bytes,
                       std::size_t pos, FrameView& view,
                       WireCounters& counters) {
  const std::uint8_t* p = bytes.data() + pos;
  const std::size_t avail = bytes.size() - pos;
  if (avail < sizeof(kMagic)) return ScanOutcome::kNeedMore;
  if (!starts_with_magic(p)) {
    ++counters.resync_bytes;
    return ScanOutcome::kResync;
  }
  if (avail < kWireHeaderSize) return ScanOutcome::kNeedMore;
  if (p[4] != kWireVersion || (p[5] & ~kWireFlagAuth) != 0) {
    ++counters.bad_version;
    return ScanOutcome::kBadVersion;
  }
  const bool authed = (p[5] & kWireFlagAuth) != 0;
  const std::uint16_t count = load_u16(p + 26);
  if (count == 0 || count > kMaxFrameReports) {
    ++counters.bad_length;
    return ScanOutcome::kBadLength;
  }
  const std::size_t total = wire_frame_size(count, authed);
  if (avail < total) return ScanOutcome::kNeedMore;
  // Header fields are filled before the CRC verdict so a kBadCrc caller
  // can attribute the rejection (to a shard, a station) — but nothing in
  // a CRC-failed view is trustworthy beyond that.
  view.header.station_id = load_u16(p + 6);
  view.header.seq = load_u64(p + 8);
  view.header.tick = static_cast<Tick>(load_u64(p + 16));
  view.header.tx = load_u16(p + 24);
  view.count = count;
  view.authenticated = authed;
  view.size = total;
  view.reports = p + kWireHeaderSize;
  view.tag =
      authed ? load_u64(p + kWireHeaderSize + kWireReportSize * count) : 0;
  const std::size_t covered = total - sizeof(kMagic) - kWireTrailerSize;
  if (crc32(p + sizeof(kMagic), covered) !=
      load_u32(p + total - kWireTrailerSize)) {
    ++counters.bad_crc;
    return ScanOutcome::kBadCrc;
  }
  ++counters.frames_ok;
  counters.reports += count;
  return ScanOutcome::kFrame;
}

std::size_t finish_scan(std::span<const std::uint8_t> bytes,
                        std::size_t pos, WireCounters& counters) {
  const std::size_t leftover = bytes.size() - pos;
  if (leftover > 0) {
    // A leftover that opens with magic is a genuinely cut-off frame;
    // anything shorter or unaligned is stray bytes being resynced past.
    if (leftover >= sizeof(kMagic) &&
        starts_with_magic(bytes.data() + pos)) {
      ++counters.truncated;
    } else {
      counters.resync_bytes += leftover;
    }
  }
  return bytes.size();
}

std::size_t find_frame_boundary(std::span<const std::uint8_t> bytes,
                                std::size_t from) {
  WireCounters scratch;
  FrameView view;
  std::size_t pos = from;
  while (pos < bytes.size()) {
    switch (scan_frame(bytes, pos, view, scratch)) {
      case ScanOutcome::kFrame:
        return pos;
      case ScanOutcome::kNeedMore:
        // A magic-led fragment that claims more bytes than remain: the
        // single-lane hunt would stall here too, so no validated frame
        // starts at or after `pos`.
        return bytes.size();
      default:
        ++pos;
        break;
    }
  }
  return bytes.size();
}

obs::HealthBlock health_block(const WireCounters& counters) {
  obs::HealthBlock block;
  block.name = "wire_decoder";
  block.add("frames_ok", static_cast<double>(counters.frames_ok));
  block.add("reports", static_cast<double>(counters.reports));
  block.add("bad_version", static_cast<double>(counters.bad_version));
  block.add("bad_length", static_cast<double>(counters.bad_length));
  block.add("bad_crc", static_cast<double>(counters.bad_crc));
  block.add("resync_bytes", static_cast<double>(counters.resync_bytes));
  block.add("truncated", static_cast<double>(counters.truncated));
  block.add("seq_gaps", static_cast<double>(counters.seq_gaps));
  block.add("seq_reordered", static_cast<double>(counters.seq_reordered));
  block.add("rejected_frames",
            static_cast<double>(counters.rejected_frames()));
  return block;
}

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  compact();
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void FrameDecoder::compact() {
  // Drop the consumed prefix once it dominates the buffer so the memmove
  // amortises to O(1) per byte; never while a caller may hold spans into
  // frame_ (frame_ owns its copies, so any time is safe).
  if (pos_ > 4096 && pos_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
}

void FrameDecoder::track_sequence(const FrameHeader& header) {
  const auto [it, inserted] =
      last_seq_.try_emplace(header.station_id, header.seq);
  if (inserted) return;
  if (header.seq <= it->second) {
    ++counters_.seq_reordered;
    return;  // keep the high-water mark
  }
  if (header.seq != it->second + 1) ++counters_.seq_gaps;
  it->second = header.seq;
}

const DecodedFrame* FrameDecoder::next() {
  // One scan_frame step per iteration: deliver a valid frame,
  // reject-and-resync by one byte (so a corrupt length field can never
  // swallow the valid frames behind it), or stop and wait for more
  // bytes.  No input byte sequence throws.
  const std::span<const std::uint8_t> bytes{buffer_.data(),
                                            buffer_.size()};
  FrameView view;
  for (;;) {
    switch (scan_frame(bytes, pos_, view, counters_)) {
      case ScanOutcome::kNeedMore:
        return nullptr;
      case ScanOutcome::kFrame: {
        frame_.header = view.header;
        frame_.authenticated = view.authenticated;
        frame_.tag = view.tag;
        frame_.reports.resize(view.count);  // reuses capacity
        for (std::uint16_t i = 0; i < view.count; ++i) {
          frame_.reports[i] = view.report(i);
        }
        pos_ += view.size;
        track_sequence(frame_.header);
        return &frame_;
      }
      default:  // kResync / kBadVersion / kBadLength / kBadCrc
        ++pos_;
        break;
    }
  }
}

void FrameDecoder::finish() {
  finish_scan({buffer_.data(), buffer_.size()}, pos_, counters_);
  buffer_.clear();
  pos_ = 0;
}

}  // namespace fadewich::net
