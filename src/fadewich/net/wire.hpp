// The binary wire format for sensor reports — the front door a real
// deployment would ingest at line rate.
//
// One frame carries one transmitter's beacon round as heard by its
// receivers: every receiver's RSSI for one (station, tick, tx), batched
// so per-report framing overhead stays a few bytes.  Layout, all fields
// little-endian:
//
//   offset size  field
//   0      4     magic 'F' 'D' 'W' 'F'
//   4      1     version (currently 1)
//   5      1     flags (bit 0: authenticated trailer; others must be 0)
//   6      2     station id
//   8      8     sequence number (per-station, increments per frame)
//   16     8     tick (int64)
//   24     2     transmitter device id
//   26     2     report count n (1 .. kMaxFrameReports)
//   28     3*n   n x { receiver device id (u16), rssi (int8 dBm) }
//   28+3n  [8]   SipHash-2-4 tag over bytes [4, 28+3n) under the
//                station's key — present iff flags bit 0 is set
//   ...    4     CRC-32 (common::Crc32) over bytes [4, crc offset)
//
// RSSI rides as int8 dBm in the sim::Recording encoding ([-128, 0]
// covers every real radio's reporting range), so replaying a recording
// over the wire reproduces the in-process byte stream exactly.
//
// FrameDecoder is the receive side: feed it bytes in arbitrary chunks
// and pull frames.  It never throws on input bytes — a truncated,
// bit-flipped, or oversized frame is counted in WireCounters (the same
// count-don't-abort taxonomy as net::FaultInjector) and the decoder
// resynchronises on the next magic, so one corrupt frame costs exactly
// that frame.  Sequence-number gaps and reordering are counted per
// station but never block delivery: the CentralStation's tick-indexed
// assembly already tolerates reordered reports.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "fadewich/net/measurement.hpp"
#include "fadewich/obs/export.hpp"

namespace fadewich::net {

inline constexpr std::uint8_t kWireVersion = 1;
/// Flags bit 0: the frame carries a keyed authentication tag before the
/// CRC trailer.  All other flag bits remain reserved-zero.
inline constexpr std::uint8_t kWireFlagAuth = 0x01;
inline constexpr std::size_t kWireHeaderSize = 28;
inline constexpr std::size_t kWireReportSize = 3;
inline constexpr std::size_t kWireTagSize = 8;
inline constexpr std::size_t kWireTrailerSize = 4;
/// Receivers per frame: one frame batches at most one beacon round, and
/// no supported deployment exceeds 4096 devices (sim recording cap).
inline constexpr std::size_t kMaxFrameReports = 4095;

/// Total encoded size of a frame carrying `reports` measurements.
constexpr std::size_t wire_frame_size(std::size_t reports,
                                      bool authenticated = false) {
  return kWireHeaderSize + kWireReportSize * reports +
         (authenticated ? kWireTagSize : 0) + kWireTrailerSize;
}

/// A station's 128-bit frame-authentication key.
struct WireKey {
  std::uint64_t k0 = 0;
  std::uint64_t k1 = 0;
};

/// Deterministic per-station key schedule: every station derives its own
/// 128-bit key from the deployment's master seed, so provisioning one
/// secret provisions the fleet and a captured station compromises only
/// its own identity.
WireKey derive_station_key(std::uint64_t master_seed,
                           std::uint16_t station_id);

/// One receiver's entry in a frame's report batch.
struct WireReport {
  DeviceId rx = 0;
  std::int8_t rssi_dbm = 0;
};

/// The per-frame header fields (everything but the report batch).
struct FrameHeader {
  std::uint16_t station_id = 0;
  std::uint64_t seq = 0;
  Tick tick = 0;
  DeviceId tx = 0;
};

/// A decoded frame.  `reports` storage is owned by the decoder and
/// reused between next() calls — copy out what must outlive the pull.
/// The decoder is keyless: it surfaces the tag of an authenticated frame
/// and leaves verification to the defender (verify_frame_tag).
struct DecodedFrame {
  FrameHeader header;
  std::vector<WireReport> reports;
  bool authenticated = false;
  std::uint64_t tag = 0;
};

/// The int8 dBm wire encoding, identical to sim::Recording::encode_dbm
/// so live capture and recording playback quantise the same way.
std::int8_t wire_encode_dbm(double rssi_dbm);

/// Append one encoded frame to `out`.  Requires 1 <= reports.size() <=
/// kMaxFrameReports (contract: the encoder runs on trusted data).  With
/// a key, the frame carries the authenticated trailer (flags bit 0 set,
/// SipHash tag between reports and CRC).
void encode_frame(const FrameHeader& header,
                  std::span<const WireReport> reports,
                  std::vector<std::uint8_t>& out,
                  const WireKey* key = nullptr);

/// The tag an authentic frame with this content would carry under `key`.
std::uint64_t frame_tag(const WireKey& key, const FrameHeader& header,
                        std::span<const WireReport> reports);

/// Verify a decoded frame's tag against the station key.  False for
/// unauthenticated frames and for tag mismatches.
bool verify_frame_tag(const WireKey& key, const DecodedFrame& frame);

/// Expand a decoded frame into bus-level measurements (int8 -> double),
/// appending to `out`.
void to_measurements(const DecodedFrame& frame,
                     std::vector<Measurement>& out);

/// Decode-side degradation counters.  Like FaultInjector::Counters,
/// every abnormal input is counted, never thrown.
struct WireCounters {
  std::uint64_t frames_ok = 0;      // frames delivered to the caller
  std::uint64_t reports = 0;        // measurements inside those frames
  std::uint64_t bad_version = 0;    // unknown version or nonzero flags
  std::uint64_t bad_length = 0;     // zero or oversized report count
  std::uint64_t bad_crc = 0;        // payload failed the CRC trailer
  std::uint64_t resync_bytes = 0;   // bytes skipped hunting for magic
  std::uint64_t truncated = 0;      // partial frames cut off by finish()
  std::uint64_t seq_gaps = 0;       // forward jumps in a station's seq
  std::uint64_t seq_reordered = 0;  // seq at or below the station's last

  /// Frames inspected and refused (resync skips are counted in bytes,
  /// not here: arbitrary garbage has no frame boundaries to count).
  std::uint64_t rejected_frames() const {
    return bad_version + bad_length + bad_crc + truncated;
  }
};

/// Flatten decoder counters for obs::ScrapeReport.
obs::HealthBlock health_block(const WireCounters& counters);

/// A zero-copy view of one frame inside a caller-owned buffer.  This is
/// the lane decoder's unit of work: header fields are parsed out, but
/// the report batch stays in place (`reports` points into the scanned
/// bytes), so decoding a capture never copies its payload.  The view is
/// valid only while the scanned buffer is.
struct FrameView {
  FrameHeader header;
  std::uint16_t count = 0;
  bool authenticated = false;
  std::uint64_t tag = 0;
  std::size_t size = 0;                   // total encoded frame bytes
  const std::uint8_t* reports = nullptr;  // count x kWireReportSize

  WireReport report(std::size_t i) const {
    const std::uint8_t* p = reports + i * kWireReportSize;
    return {static_cast<DeviceId>(p[0] | (p[1] << 8)),
            static_cast<std::int8_t>(p[2])};
  }
};

/// One step of the byte-hunting decode loop, shared by FrameDecoder and
/// the sharded ingest plane's lane workers.  Every outcome but kFrame
/// and kNeedMore advances the hunt by exactly one byte, so a corrupt
/// length field can never swallow the valid frames behind it.
enum class ScanOutcome : std::uint8_t {
  kFrame,       // `view` holds a validated frame; advance by view.size
  kResync,      // no magic at pos; advance one byte
  kBadVersion,  // magic but unknown version or flags; advance one byte
  kBadLength,   // zero or oversized report count; advance one byte
  kBadCrc,      // fully parsed but failed the CRC trailer; advance one
                // byte.  view.header/count/size are filled so callers
                // can attribute the rejection — but they are UNTRUSTED
  kNeedMore,    // the suffix may be a frame prefix; feed more bytes or
                // close out with finish_scan()
};

/// Classify the bytes at `bytes[pos..]`.  Requires pos <= bytes.size().
/// `counters` is updated to match the outcome (frames_ok/reports on
/// kFrame, the rejection buckets otherwise); kNeedMore counts nothing —
/// the caller either feeds more bytes or calls finish_scan().  Never
/// throws on any input byte sequence.
ScanOutcome scan_frame(std::span<const std::uint8_t> bytes,
                       std::size_t pos, FrameView& view,
                       WireCounters& counters);

/// End-of-stream accounting for the tail a scan left behind (kNeedMore):
/// a magic-led fragment counts as one truncated frame, anything else as
/// resync bytes.  Returns bytes.size().
std::size_t finish_scan(std::span<const std::uint8_t> bytes,
                        std::size_t pos, WireCounters& counters);

/// The first offset at or after `from` holding a CRC-validated frame, or
/// bytes.size() when the suffix holds none.  This is how the sharded
/// ingest plane aligns lane boundaries to real frame starts: a validated
/// frame is one the single-lane hunt would also deliver, so planning on
/// validated starts partitions the stream without double-delivery.
std::size_t find_frame_boundary(std::span<const std::uint8_t> bytes,
                                std::size_t from);

class FrameDecoder {
 public:
  FrameDecoder() = default;

  /// Buffer a chunk of the byte stream.  Chunk boundaries are arbitrary:
  /// frames may span feeds.
  void feed(std::span<const std::uint8_t> bytes);

  /// Decode and return the next valid frame, or nullptr when the
  /// buffered bytes hold none (feed more).  Invalid bytes are counted
  /// and skipped.  The returned frame is valid until the next call.
  const DecodedFrame* next();

  /// Declare end-of-stream: any buffered partial frame is counted as
  /// truncated and discarded.  The decoder is reusable afterwards.
  void finish();

  /// Bytes fed but not yet consumed by next().
  std::size_t buffered_bytes() const { return buffer_.size() - pos_; }

  const WireCounters& counters() const { return counters_; }

 private:
  void track_sequence(const FrameHeader& header);
  void compact();

  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;  // consumed prefix of buffer_
  DecodedFrame frame_;   // reused output storage
  std::map<std::uint16_t, std::uint64_t> last_seq_;  // per station
  WireCounters counters_;
};

}  // namespace fadewich::net
