// Live sensor network: every tick is one TDMA beacon round — each device
// broadcasts once and all others report the measured RSSI to the central
// station through the message bus.  The channel truth comes from
// rf::ChannelMatrix; body states are supplied by the caller each tick
// (typically from sim::Person agents).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fadewich/net/central_station.hpp"
#include "fadewich/net/message_bus.hpp"
#include "fadewich/net/stream_source.hpp"
#include "fadewich/rf/channel.hpp"

namespace fadewich::net {

class LiveSensorNetwork {
 public:
  LiveSensorNetwork(std::vector<rf::Point> sensors,
                    rf::ChannelConfig channel_config, double tick_hz,
                    std::uint64_t seed);

  std::size_t stream_count() const { return station_.stream_count(); }
  double tick_hz() const { return tick_hz_; }
  Tick current_tick() const { return tick_; }

  /// Run one beacon round with the given bodies present; returns the
  /// assembled stream row for the round.
  std::vector<double> round(std::span<const rf::BodyState> bodies);

  const rf::ChannelMatrix& channel() const { return channel_; }

 private:
  rf::ChannelMatrix channel_;
  MessageBus bus_;
  CentralStation station_;
  double tick_hz_;
  Tick tick_ = 0;
};

}  // namespace fadewich::net
