// Live sensor network: every tick is one TDMA beacon round — each device
// broadcasts once and all others report the measured RSSI to the central
// station through the message bus.  The channel truth comes from
// rf::ChannelMatrix; body states are supplied by the caller each tick
// (typically from sim::Person agents).
//
// The reporting path may be degraded: an optional FaultInjector drops,
// delays, and duplicates reports (and takes whole sensors offline), and
// the station releases rows on the configured deadline with stale cells
// imputed.  A round therefore yields zero or more rows (in tick order);
// with faults disabled every round yields exactly one complete row whose
// values are bit-identical to the fault-free path.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fadewich/net/central_station.hpp"
#include "fadewich/net/fault_injector.hpp"
#include "fadewich/net/message_bus.hpp"
#include "fadewich/net/stream_source.hpp"
#include "fadewich/rf/channel.hpp"

namespace fadewich::net {

class LiveSensorNetwork {
 public:
  LiveSensorNetwork(std::vector<rf::Point> sensors,
                    rf::ChannelConfig channel_config, double tick_hz,
                    std::uint64_t seed);

  /// As above, with a degraded reporting path: `faults` drives the
  /// injector (seeded from `seed` so runs stay reproducible) and
  /// `station` sets the release deadline and pending cap.  When faults
  /// are enabled the station deadline must be positive, or lost reports
  /// would stall row release forever.
  LiveSensorNetwork(std::vector<rf::Point> sensors,
                    rf::ChannelConfig channel_config, double tick_hz,
                    std::uint64_t seed, const FaultConfig& faults,
                    StationConfig station);

  std::size_t stream_count() const { return station_.stream_count(); }
  double tick_hz() const { return tick_hz_; }
  Tick current_tick() const { return tick_; }

  /// Run one beacon round with the given bodies present; returns the
  /// rows released this round, in tick order.  Fault-free networks
  /// return exactly one complete row per round.
  std::vector<StationRow> round(std::span<const rf::BodyState> bodies);

  const rf::ChannelMatrix& channel() const { return channel_; }
  const CentralStation& station() const { return station_; }
  /// Mutable access for interval-style health consumers (reset_health()).
  CentralStation& station() { return station_; }
  const FaultInjector* injector() const {
    return injector_ ? &*injector_ : nullptr;
  }

 private:
  rf::ChannelMatrix channel_;
  MessageBus bus_;
  CentralStation station_;
  std::optional<FaultInjector> injector_;
  double tick_hz_;
  Tick tick_ = 0;
};

}  // namespace fadewich::net
