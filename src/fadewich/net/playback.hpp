// Playback of a sim::Recording as an RssiStreamSource, optionally
// restricted to the streams of a sensor subset.  All the paper's offline
// sweeps (sensor counts, t_delta values) run MD/RE over playbacks of one
// recording, exactly as the authors analysed one physical dataset.
#pragma once

#include <vector>

#include "fadewich/net/stream_source.hpp"
#include "fadewich/sim/recording.hpp"

namespace fadewich::net {

class RecordingPlayback final : public RssiStreamSource {
 public:
  /// Play back every stream of the recording.
  explicit RecordingPlayback(const sim::Recording& recording);

  /// Play back only the ordered-pair streams among `sensors` (indices
  /// into the recorded deployment).  Requires >= 2 sensors.
  RecordingPlayback(const sim::Recording& recording,
                    const std::vector<std::size_t>& sensors);

  std::size_t stream_count() const override { return streams_.size(); }
  double tick_hz() const override;
  bool next(std::span<double> out) override;

  Tick position() const { return position_; }
  void rewind() { position_ = 0; }

 private:
  const sim::Recording* recording_;
  std::vector<std::size_t> streams_;  // recording stream indices
  Tick position_ = 0;
};

}  // namespace fadewich::net
