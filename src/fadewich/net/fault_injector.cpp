#include "fadewich/net/fault_injector.hpp"

#include <algorithm>

#include "fadewich/common/error.hpp"
#include "fadewich/exec/thread_pool.hpp"
#include "fadewich/obs/obs.hpp"

namespace fadewich::net {

namespace {

struct FaultMetrics {
  obs::Counter offered = obs::registry().counter(
      "fadewich_fault_offered_total", "reports offered to the injector");
  obs::Counter dropped = obs::registry().counter(
      "fadewich_fault_dropped_total", "random per-report drops");
  obs::Counter outage_dropped = obs::registry().counter(
      "fadewich_fault_outage_dropped_total", "drops from sensor outages");
  obs::Counter delayed = obs::registry().counter(
      "fadewich_fault_delayed_total", "reports held back for later ticks");
  obs::Counter duplicated = obs::registry().counter(
      "fadewich_fault_duplicated_total", "reports published twice");
  obs::Counter delivered = obs::registry().counter(
      "fadewich_fault_delivered_total", "reports that reached the bus");
  static FaultMetrics& get() {
    static FaultMetrics metrics;
    return metrics;
  }
};

}  // namespace

obs::HealthBlock health_block(const FaultInjector::Counters& counters) {
  obs::HealthBlock block;
  block.name = "faults";
  block.add("offered", static_cast<double>(counters.offered));
  block.add("dropped", static_cast<double>(counters.dropped));
  block.add("outage_dropped",
            static_cast<double>(counters.outage_dropped));
  block.add("delayed", static_cast<double>(counters.delayed));
  block.add("duplicated", static_cast<double>(counters.duplicated));
  block.add("delivered", static_cast<double>(counters.delivered));
  return block;
}

FaultInjector::FaultInjector(std::size_t device_count, FaultConfig config,
                             std::uint64_t seed)
    : device_count_(device_count), config_(std::move(config)) {
  // Fault configs typically arrive from runtime sources (sweep files,
  // CLI flags), so bad values are data errors, not caller bugs: throw
  // fadewich::Error rather than tripping a contract.  The negated
  // comparisons also reject NaN probabilities.
  if (device_count < 2) {
    throw Error("fault injector: device_count must be >= 2");
  }
  if (!(config_.drop_probability >= 0.0 &&
        config_.drop_probability <= 1.0)) {
    throw Error("fault injector: drop_probability must be in [0, 1]");
  }
  if (!(config_.delay_probability >= 0.0 &&
        config_.delay_probability <= 1.0)) {
    throw Error("fault injector: delay_probability must be in [0, 1]");
  }
  if (!(config_.duplicate_probability >= 0.0 &&
        config_.duplicate_probability <= 1.0)) {
    throw Error("fault injector: duplicate_probability must be in [0, 1]");
  }
  if (config_.delay_probability > 0.0 && config_.max_delay_ticks < 1) {
    throw Error("fault injector: delays need max_delay_ticks >= 1");
  }
  for (const SensorOutage& outage : config_.outages) {
    if (outage.device >= device_count) {
      throw Error("fault injector: outage names an unknown device");
    }
    if (outage.from > outage.to) {
      throw Error("fault injector: outage interval is reversed");
    }
  }
  const std::size_t links = device_count * (device_count - 1);
  link_rngs_.reserve(links);
  for (std::size_t s = 0; s < links; ++s) {
    link_rngs_.emplace_back(exec::task_seed(seed, s));
  }
}

std::size_t FaultInjector::link_index(DeviceId tx, DeviceId rx) const {
  FADEWICH_EXPECTS(tx < device_count_);
  FADEWICH_EXPECTS(rx < device_count_);
  FADEWICH_EXPECTS(tx != rx);
  return static_cast<std::size_t>(tx) * (device_count_ - 1) +
         (rx < tx ? rx : rx - 1);
}

bool FaultInjector::in_outage(DeviceId device, Tick tick) const {
  for (const SensorOutage& outage : config_.outages) {
    if (outage.device == device && tick >= outage.from &&
        tick <= outage.to) {
      return true;
    }
  }
  return false;
}

void FaultInjector::offer(const Measurement& m, MessageBus& bus) {
  auto& metrics = FaultMetrics::get();
  ++counters_.offered;
  metrics.offered.inc();

  // Outage drops are schedule-driven: no RNG draw, so enabling an outage
  // does not perturb the other links' fault sequences.
  if (in_outage(m.tx, m.tick) || in_outage(m.rx, m.tick)) {
    ++counters_.outage_dropped;
    metrics.outage_dropped.inc();
    return;
  }

  if (!config_.enabled()) {
    ++counters_.delivered;
    metrics.delivered.inc();
    bus.publish(m);
    return;
  }

  Rng& rng = link_rngs_[link_index(m.tx, m.rx)];
  if (config_.drop_probability > 0.0 &&
      rng.bernoulli(config_.drop_probability)) {
    ++counters_.dropped;
    metrics.dropped.inc();
    return;
  }
  if (config_.delay_probability > 0.0 &&
      rng.bernoulli(config_.delay_probability)) {
    const Tick delay = rng.uniform_int(1, config_.max_delay_ticks);
    ++counters_.delayed;
    metrics.delayed.inc();
    DelayedReport held{m.tick + delay, next_sequence_++, m};
    // Insertion keeps the queue sorted by (due, sequence); delays are
    // bounded by max_delay_ticks so the scan is short.
    const auto pos = std::upper_bound(
        delayed_.begin(), delayed_.end(), held,
        [](const DelayedReport& a, const DelayedReport& b) {
          return a.due != b.due ? a.due < b.due : a.sequence < b.sequence;
        });
    delayed_.insert(pos, std::move(held));
    return;
  }
  ++counters_.delivered;
  metrics.delivered.inc();
  bus.publish(m);
  if (config_.duplicate_probability > 0.0 &&
      rng.bernoulli(config_.duplicate_probability)) {
    ++counters_.duplicated;
    ++counters_.delivered;
    metrics.duplicated.inc();
    metrics.delivered.inc();
    bus.publish(m);
  }
}

void FaultInjector::advance(Tick now, MessageBus& bus) {
  auto& metrics = FaultMetrics::get();
  while (!delayed_.empty() && delayed_.front().due <= now) {
    ++counters_.delivered;
    metrics.delivered.inc();
    bus.publish(delayed_.front().measurement);
    delayed_.pop_front();
  }
}

}  // namespace fadewich::net
