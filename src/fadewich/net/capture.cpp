#include "fadewich/net/capture.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "fadewich/common/crc32.hpp"
#include "fadewich/common/error.hpp"

namespace fadewich::net {

namespace {

constexpr char kCaptureMagic[4] = {'F', 'D', 'W', 'C'};

}  // namespace

CaptureWriter::CaptureWriter(std::ostream& os, double tick_hz,
                             std::size_t device_count)
    : os_(&os) {
  if (!std::isfinite(tick_hz) || tick_hz <= 0.0) {
    throw Error("capture: tick rate must be finite and positive");
  }
  if (device_count < 2 || device_count > kMaxCaptureDevices) {
    throw Error("capture: implausible device count");
  }
  std::uint8_t header[kCaptureHeaderSize];
  std::memcpy(header, kCaptureMagic, sizeof(kCaptureMagic));
  const std::uint32_t version = kCaptureVersion;
  std::memcpy(header + 4, &version, sizeof(version));
  std::memcpy(header + 8, &tick_hz, sizeof(tick_hz));
  const auto devices = static_cast<std::uint64_t>(device_count);
  std::memcpy(header + 16, &devices, sizeof(devices));
  const std::uint32_t checksum = crc32(header + 4, 20);
  std::memcpy(header + 24, &checksum, sizeof(checksum));
  os.write(reinterpret_cast<const char*>(header), sizeof(header));
  if (!os) throw Error("capture: header write failed");
}

void CaptureWriter::append(const FrameHeader& header,
                           std::span<const WireReport> reports) {
  scratch_.clear();
  encode_frame(header, reports, scratch_);
  os_->write(reinterpret_cast<const char*>(scratch_.data()),
             static_cast<std::streamsize>(scratch_.size()));
  if (!*os_) throw Error("capture: frame write failed");
  ++frames_written_;
}

CaptureHeader read_capture_header(std::istream& is) {
  std::uint8_t header[kCaptureHeaderSize];
  is.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!is) throw Error("capture truncated (header missing)");
  if (std::memcmp(header, kCaptureMagic, sizeof(kCaptureMagic)) != 0) {
    throw Error("not a FADEWICH capture (bad magic)");
  }
  std::uint32_t version = 0;
  std::memcpy(&version, header + 4, sizeof(version));
  if (version < 1 || version > kCaptureVersion) {
    throw Error("unsupported capture version " + std::to_string(version));
  }
  std::uint32_t stored = 0;
  std::memcpy(&stored, header + 24, sizeof(stored));
  if (stored != crc32(header + 4, 20)) {
    throw Error("capture header CRC mismatch");
  }
  CaptureHeader out;
  std::memcpy(&out.tick_hz, header + 8, sizeof(out.tick_hz));
  std::uint64_t devices = 0;
  std::memcpy(&devices, header + 16, sizeof(devices));
  // isfinite, not just a sign test: NaN fields must not slip through.
  if (!std::isfinite(out.tick_hz) || out.tick_hz <= 0.0 || devices < 2 ||
      devices > kMaxCaptureDevices) {
    throw Error("capture header is implausible");
  }
  out.device_count = static_cast<std::size_t>(devices);
  return out;
}

std::vector<std::uint8_t> read_capture_frames(std::istream& is,
                                              std::uint64_t max_bytes) {
  std::vector<std::uint8_t> out;
  std::uint8_t chunk[1 << 16];
  for (;;) {
    is.read(reinterpret_cast<char*>(chunk), sizeof(chunk));
    const auto got = static_cast<std::size_t>(is.gcount());
    if (got == 0) break;
    // Checked per chunk, so the cap binds before the allocation grows —
    // a hostile capture cannot demand more than one chunk past it.
    if (out.size() + got > max_bytes) {
      throw Error("capture frame stream exceeds the load cap");
    }
    out.insert(out.end(), chunk, chunk + got);
    if (!is) break;  // short final read: end of stream
  }
  return out;
}

Capture load_capture(std::istream& is) {
  Capture capture;
  capture.header = read_capture_header(is);
  capture.frames = read_capture_frames(is);
  return capture;
}

Capture load_capture(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw Error("cannot open for reading: " + path);
  return load_capture(is);
}

}  // namespace fadewich::net
