#include "fadewich/net/live_network.hpp"

#include "fadewich/common/error.hpp"

namespace fadewich::net {

LiveSensorNetwork::LiveSensorNetwork(std::vector<rf::Point> sensors,
                                     rf::ChannelConfig channel_config,
                                     double tick_hz, std::uint64_t seed)
    : channel_(std::move(sensors), channel_config, seed),
      station_(channel_.sensor_count()),
      tick_hz_(tick_hz) {
  FADEWICH_EXPECTS(tick_hz > 0.0);
}

std::vector<double> LiveSensorNetwork::round(
    std::span<const rf::BodyState> bodies) {
  // Physical truth for the round: one RSSI per directed stream.
  std::vector<double> truth(channel_.stream_count());
  channel_.sample(bodies, truth);

  // Each receiver reports each measurement to the station.
  const auto m = static_cast<DeviceId>(channel_.sensor_count());
  for (DeviceId tx = 0; tx < m; ++tx) {
    for (DeviceId rx = 0; rx < m; ++rx) {
      if (tx == rx) continue;
      bus_.publish(Measurement{tx, rx, tick_,
                               truth[channel_.stream_index(tx, rx)]});
    }
  }

  const std::vector<Tick> complete = station_.ingest(bus_);
  FADEWICH_ENSURES(complete.size() == 1 && complete[0] == tick_);
  std::vector<double> row = station_.take_row(tick_);
  ++tick_;
  return row;
}

}  // namespace fadewich::net
