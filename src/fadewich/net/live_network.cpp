#include "fadewich/net/live_network.hpp"

#include "fadewich/common/error.hpp"

namespace fadewich::net {

LiveSensorNetwork::LiveSensorNetwork(std::vector<rf::Point> sensors,
                                     rf::ChannelConfig channel_config,
                                     double tick_hz, std::uint64_t seed)
    : channel_(std::move(sensors), channel_config, seed),
      station_(channel_.sensor_count()),
      tick_hz_(tick_hz) {
  FADEWICH_EXPECTS(tick_hz > 0.0);
}

LiveSensorNetwork::LiveSensorNetwork(std::vector<rf::Point> sensors,
                                     rf::ChannelConfig channel_config,
                                     double tick_hz, std::uint64_t seed,
                                     const FaultConfig& faults,
                                     StationConfig station)
    : channel_(std::move(sensors), channel_config, seed),
      station_(channel_.sensor_count(), station),
      tick_hz_(tick_hz) {
  FADEWICH_EXPECTS(tick_hz > 0.0);
  // Mismatched fault/station configs are a runtime deployment error.
  if (faults.enabled() && station.deadline_ticks <= 0) {
    throw Error(
        "live network: faults need a release deadline (deadline_ticks)");
  }
  if (faults.enabled()) {
    // A distinct seed stream from the channel's: the injector's draws
    // must not disturb the physical truth.
    injector_.emplace(channel_.sensor_count(), faults, seed ^ 0x5DEECE66Dull);
  }
}

std::vector<StationRow> LiveSensorNetwork::round(
    std::span<const rf::BodyState> bodies) {
  // Physical truth for the round: one RSSI per directed stream.
  std::vector<double> truth(channel_.stream_count());
  channel_.sample(bodies, truth);

  // Each receiver reports each measurement to the station, through the
  // (possibly faulty) reporting path.
  const auto m = static_cast<DeviceId>(channel_.sensor_count());
  for (DeviceId tx = 0; tx < m; ++tx) {
    for (DeviceId rx = 0; rx < m; ++rx) {
      if (tx == rx) continue;
      const Measurement report{tx, rx, tick_,
                               truth[channel_.stream_index(tx, rx)]};
      if (injector_) {
        injector_->offer(report, bus_);
      } else {
        bus_.publish(report);
      }
    }
  }
  if (injector_) injector_->advance(tick_, bus_);

  const std::vector<Tick> ready = station_.ingest(bus_, tick_);
  std::vector<StationRow> rows;
  rows.reserve(ready.size());
  for (const Tick tick : ready) {
    std::optional<StationRow> row = station_.take_row(tick);
    FADEWICH_ENSURES(row.has_value());
    rows.push_back(std::move(*row));
  }
  if (!injector_) {
    // Reliable channel: the paper's assumption holds and every round
    // must assemble exactly its own tick.
    FADEWICH_ENSURES(rows.size() == 1 && rows[0].tick == tick_);
  }
  ++tick_;
  return rows;
}

}  // namespace fadewich::net
