// In-process stand-in for the devices' secure reporting channel.  Devices
// publish measurements; the central station drains them.  FIFO per
// publish order; no loss (the paper assumes a reliable secure channel and
// does not study report loss).
//
// Drains are O(1) buffer swaps, not per-measurement copies: the station
// hands its scratch vector to drain_into() and the two buffers ping-pong,
// so the steady state allocates nothing.  For a real wire, the hot route
// bypasses the bus entirely: FrameDecoder -> IngestQueue ->
// CentralStation::ingest(batch) (see net/wire.hpp).
#pragma once

#include <vector>

#include "fadewich/net/measurement.hpp"

namespace fadewich::net {

class MessageBus {
 public:
  void publish(const Measurement& m) { queue_.push_back(m); }

  /// Swap all queued measurements into `out` (cleared first), in publish
  /// order.  `out`'s old capacity becomes the next accumulation buffer.
  void drain_into(std::vector<Measurement>& out);

  /// Remove and return all queued measurements in publish order.
  std::vector<Measurement> drain();

  std::size_t pending() const { return queue_.size(); }

 private:
  std::vector<Measurement> queue_;
};

}  // namespace fadewich::net
