// In-process stand-in for the devices' secure reporting channel.  Devices
// publish measurements; the central station drains them.  FIFO per
// publish order; no loss (the paper assumes a reliable secure channel and
// does not study report loss).
#pragma once

#include <deque>
#include <vector>

#include "fadewich/net/measurement.hpp"

namespace fadewich::net {

class MessageBus {
 public:
  void publish(const Measurement& m);

  /// Remove and return all queued measurements in publish order.
  std::vector<Measurement> drain();

  std::size_t pending() const { return queue_.size(); }

 private:
  std::deque<Measurement> queue_;
};

}  // namespace fadewich::net
