#include "fadewich/net/playback.hpp"

#include <numeric>

#include "fadewich/common/error.hpp"

namespace fadewich::net {

RecordingPlayback::RecordingPlayback(const sim::Recording& recording)
    : recording_(&recording), streams_(recording.stream_count()) {
  std::iota(streams_.begin(), streams_.end(), std::size_t{0});
}

RecordingPlayback::RecordingPlayback(const sim::Recording& recording,
                                     const std::vector<std::size_t>& sensors)
    : recording_(&recording),
      streams_(recording.streams_for_sensors(sensors)) {}

double RecordingPlayback::tick_hz() const { return recording_->rate().hz(); }

bool RecordingPlayback::next(std::span<double> out) {
  FADEWICH_EXPECTS(out.size() == streams_.size());
  if (position_ >= recording_->tick_count()) return false;
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    out[i] = recording_->rssi(streams_[i], position_);
  }
  ++position_;
  return true;
}

}  // namespace fadewich::net
