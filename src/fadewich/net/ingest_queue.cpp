#include "fadewich/net/ingest_queue.hpp"

#include <algorithm>

#include "fadewich/common/error.hpp"

namespace fadewich::net {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

IngestQueue::IngestQueue(std::size_t capacity) {
  FADEWICH_EXPECTS(capacity >= 1);
  slots_.resize(round_up_pow2(capacity));
  mask_ = slots_.size() - 1;
}

bool IngestQueue::try_push(const Measurement& m) {
  const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  if (tail - head >= slots_.size()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  slots_[static_cast<std::size_t>(tail) & mask_] = m;
  tail_.store(tail + 1, std::memory_order_release);
  pushed_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::size_t IngestQueue::push_some(std::span<const Measurement> batch) {
  const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t room = slots_.size() - (tail - head);
  const std::size_t n =
      std::min(batch.size(), static_cast<std::size_t>(room));
  for (std::size_t i = 0; i < n; ++i) {
    slots_[static_cast<std::size_t>(tail + i) & mask_] = batch[i];
  }
  tail_.store(tail + n, std::memory_order_release);
  pushed_.fetch_add(n, std::memory_order_relaxed);
  if (n < batch.size()) {
    rejected_.fetch_add(batch.size() - n, std::memory_order_relaxed);
  }
  return n;
}

std::size_t IngestQueue::pop_batch(std::span<Measurement> out) {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  const std::size_t n =
      std::min(out.size(), static_cast<std::size_t>(tail - head));
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = slots_[static_cast<std::size_t>(head + i) & mask_];
  }
  head_.store(head + n, std::memory_order_release);
  popped_.fetch_add(n, std::memory_order_relaxed);
  return n;
}

std::span<Measurement> IngestQueue::back_span(std::size_t limit) {
  const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::size_t at = static_cast<std::size_t>(tail) & mask_;
  const std::size_t room =
      slots_.size() - static_cast<std::size_t>(tail - head);
  const std::size_t n = std::min({limit, room, slots_.size() - at});
  return {slots_.data() + at, n};
}

void IngestQueue::publish(std::size_t n) {
  const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  tail_.store(tail + n, std::memory_order_release);
  pushed_.fetch_add(n, std::memory_order_relaxed);
}

std::span<const Measurement> IngestQueue::front_span(
    std::size_t limit) const {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  const std::size_t at = static_cast<std::size_t>(head) & mask_;
  const std::size_t queued = static_cast<std::size_t>(tail - head);
  const std::size_t n =
      std::min({limit, queued, slots_.size() - at});
  return {slots_.data() + at, n};
}

void IngestQueue::consume(std::size_t n) {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  head_.store(head + n, std::memory_order_release);
  popped_.fetch_add(n, std::memory_order_relaxed);
}

IngestQueue::Counters IngestQueue::counters() const {
  Counters c;
  c.pushed = pushed_.load(std::memory_order_relaxed);
  c.popped = popped_.load(std::memory_order_relaxed);
  c.rejected_full = rejected_.load(std::memory_order_relaxed);
  return c;
}

obs::HealthBlock health_block(const IngestQueue::Counters& counters) {
  obs::HealthBlock block;
  block.name = "ingest_queue";
  block.add("pushed", static_cast<double>(counters.pushed));
  block.add("popped", static_cast<double>(counters.popped));
  block.add("rejected_full", static_cast<double>(counters.rejected_full));
  return block;
}

}  // namespace fadewich::net
