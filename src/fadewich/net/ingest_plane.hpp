// The sharded ingestion plane: the multi-lane front door that turns one
// recorded (or received) byte stream into per-shard measurement streams
// at line rate.
//
// Topology: N decoder *lanes* each own a contiguous byte range of the
// input, aligned to validated frame starts (find_frame_boundary), and
// run the never-throw scan_frame hunt in parallel on the exec pool.
// Each decoded frame is routed by station id to one of S *shards* and
// its reports pushed through the (lane, shard) SPSC ring — lanes x
// shards IngestQueues, each with exactly one producer (the lane) and
// one consumer (the shard's drain task).  A shard drains lane rings in
// lane order behind a *frontier* cursor: all of lane l's reports are
// consumed before any of lane l+1's, which reconstructs wire order per
// shard exactly — the same tick-order-merge contract simulate_week uses
// — so the per-shard measurement stream is bit-identical at any lane
// count, and a strict CentralStation fed by a shard releases identical
// rows whether one lane decoded the capture or sixteen did.
//
// Scheduling is round-based and cooperative: every round is one
// parallel_for over lanes + shards where no task ever blocks or spins —
// a lane that hits a full ring parks the overflow in a carry buffer and
// returns (counted ring_full_backpressure); a shard whose frontier ring
// is empty returns and re-checks next round.  That makes the plane
// deadlock-free at any pool size including one thread, where
// parallel_for degenerates to a serial loop and the rounds interleave
// decode and drain on the caller.
//
// Ordering/equivalence contract: lane boundaries are validated frame
// starts, so partitioning never splits or duplicates a frame the
// single-lane hunt would deliver.  Two documented edge cases: (1) a
// corrupt fragment abutting a boundary may be counted `truncated` by
// the lane where the single-lane walk would count `bad_crc` +
// `resync_bytes` — attribution differs, delivered frames do not; (2) a
// crafted CRC-valid frame embedded inside another CRC-valid frame's
// payload could make the partitioned walk deliver differently than the
// sequential walk.  No honest encoder emits overlapping frames and the
// bench's hard equivalence gate re-verifies every corpus it replays.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "fadewich/exec/thread_pool.hpp"
#include "fadewich/net/ingest_queue.hpp"
#include "fadewich/net/measurement.hpp"
#include "fadewich/net/wire.hpp"
#include "fadewich/obs/export.hpp"

namespace fadewich::net {

struct PlaneConfig {
  /// Decoder workers.  Requires >= 1; FADEWICH_INGEST_LANES is the
  /// conventional runtime source (see common/env.hpp).
  std::size_t lanes = 1;
  /// Output partitions (one per fleet office, typically).  Requires >= 1.
  std::size_t shards = 1;
  /// Slots per (lane, shard) ring; 0 derives it from ring_budget_bytes.
  std::size_t ring_capacity = 0;
  /// Total measurement-slot memory across all rings when ring_capacity
  /// is 0; the derived per-ring capacity is clamped to [256, 65536].
  std::size_t ring_budget_bytes = 32ull << 20;
  /// Max measurements handed to the sink per call (and the drain
  /// scratch-buffer size).  Requires >= 1.
  std::size_t drain_batch = 4096;
  /// Run every round on the calling thread instead of the pool — the
  /// reproducible single-thread reference the bench gates against.
  bool serial = false;
  /// Mint per-shard labeled obs series — subject to the cardinality cap
  /// below, exactly like fleet's per-office series.
  bool per_shard_series = true;
  std::size_t per_shard_series_cap = 512;
};

/// Per-shard ingest counters, exported through obs::labeled when the
/// cardinality cap allows.
struct PlaneShardCounters {
  std::uint64_t frames_decoded = 0;         // CRC-valid frames routed here
  std::uint64_t crc_rejected = 0;           // kBadCrc frames attributed here
  std::uint64_t ring_full_backpressure = 0; // lane stalls on this shard's rings
  std::uint64_t reports_delivered = 0;      // measurements handed to the sink
};

struct PlaneCounters {
  WireCounters wire;                  // merged across lanes
  std::uint64_t rounds = 0;           // cooperative scheduling rounds
  std::uint64_t reports_delivered = 0;
  std::uint64_t ring_full_backpressure = 0;
  std::vector<PlaneShardCounters> per_shard;
};

/// Flatten plane counters for obs::ScrapeReport.
obs::HealthBlock health_block(const PlaneCounters& counters);

class IngestPlane {
 public:
  /// station id -> shard index (must return < shards).  The default is
  /// station_id % shards — the fleet convention where office i's
  /// station carries id i.
  using Router = std::function<std::size_t(std::uint16_t station_id)>;

  /// Per-shard batch consumer.  Called concurrently for *different*
  /// shards (never concurrently for one shard), with batches in exact
  /// wire order per shard; the span dies with the call.
  using Sink =
      std::function<void(std::size_t shard, std::span<const Measurement>)>;

  /// Invalid configs throw fadewich::Error.  `pool` defaults to the
  /// process-global pool.
  explicit IngestPlane(PlaneConfig config, exec::ThreadPool* pool = nullptr);
  ~IngestPlane();

  /// Replace the station->shard route.  Must be set before replay().
  void set_router(Router router);

  const PlaneConfig& config() const { return config_; }
  std::size_t ring_capacity() const { return ring_capacity_; }

  /// Drive one complete byte stream through the plane.  Returns the
  /// number of measurements delivered to the sink.  Reusable: counters
  /// accumulate across calls.  Throws fadewich::Error if the router
  /// returns an out-of-range shard or the plane stops making progress
  /// (both indicate caller bugs, not input bytes — input bytes never
  /// throw).
  std::uint64_t replay(std::span<const std::uint8_t> bytes,
                       const Sink& sink);

  const PlaneCounters& counters() const { return counters_; }

 private:
  struct LaneState;
  struct ShardState;

  IngestQueue& ring(std::size_t lane, std::size_t shard) {
    return *rings_[lane * config_.shards + shard];
  }
  void plan_lanes(std::span<const std::uint8_t> bytes);
  void decode_round(LaneState& lane, std::span<const std::uint8_t> bytes);
  void drain_round(ShardState& shard, const Sink& sink);
  std::uint64_t progress_mark() const;
  void merge_lane_counters();
  void flush_obs();

  PlaneConfig config_;
  exec::ThreadPool* pool_;
  Router router_;
  std::size_t ring_capacity_ = 0;
  std::vector<std::unique_ptr<IngestQueue>> rings_;  // lanes x shards
  std::vector<std::unique_ptr<LaneState>> lanes_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  PlaneCounters counters_;
  // Labeled per-shard handles (empty when the cardinality cap bites)
  // plus the last-flushed snapshot so repeated replays export deltas.
  struct ShardMetrics {
    obs::Counter frames;
    obs::Counter crc_rejected;
    obs::Counter backpressure;
    obs::Counter reports;
  };
  std::vector<ShardMetrics> shard_metrics_;
  std::vector<PlaneShardCounters> flushed_;
  obs::Histogram ring_depth_;
};

}  // namespace fadewich::net
